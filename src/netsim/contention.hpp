// Cross-job link contention on a shared fat-tree (DESIGN.md §15).
//
// The multi-tenant scheduler packs several training jobs onto one
// cluster; their allreduce traffic shares the fabric. This estimator
// models each running job as a ring over its member hosts (the dominant
// communication pattern of ring/multicolor allreduce), routes every
// ring flow over the tree with the same ECMP hashing the flow simulator
// uses, counts flows per directed link, and reports — per job — how
// much slower its collective runs because of the *other* tenants'
// flows on its busiest shared link.
//
// slowdown_j = max over links l used by job j of
//                total_flows(l) / own_flows_j(l)
//
// 1.0 means the job's ring never shares a link with another tenant
// (perfect placement isolation); 2.0 means some link on its ring
// carries as much foreign traffic as its own. The estimate is
// intentionally coarse — a max-min fair-share bound, not a packet
// simulation — so the scheduler can log placement quality per tick
// without running the flow simulator inside the placement loop.
#pragma once

#include <string>
#include <vector>

#include "netsim/topology.hpp"

namespace dct::netsim {

/// One tenant's placement: which hosts (ranks of the topology) it owns.
struct JobPlacement {
  int job = -1;
  std::vector<int> hosts;
};

/// Per-job verdict from estimate_contention.
struct JobContention {
  int job = -1;
  double slowdown = 1.0;     ///< ≥ 1.0; see header comment
  int busiest_link = -1;     ///< link id realizing the max, -1 if no flows
  std::string busiest_name;  ///< Topology::link_name of that link
};

/// Estimate cross-job contention for a set of concurrently running
/// jobs. Jobs with fewer than two hosts generate no ring flows and
/// report slowdown 1.0. Host ids must be valid ranks of `tree`. Works
/// on any Topology (fat-tree, torus, dragonfly, ...).
std::vector<JobContention> estimate_contention(
    const Topology& tree, const std::vector<JobPlacement>& jobs);

}  // namespace dct::netsim
