#include "netsim/anomaly.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace dct::netsim {

std::vector<SlowLink> detect_slow_links(const Topology& net,
                                        const SimResult& result,
                                        const SlowLinkOptions& options) {
  DCT_CHECK_MSG(
      result.link_utilization.size() ==
          static_cast<std::size_t>(net.num_links()),
      "SimResult does not match this topology (wrong link count)");
  std::vector<SlowLink> flagged;
  // Class 0: host rails, class 1: fabric.
  for (int cls = 0; cls < 2; ++cls) {
    std::vector<int> busy;
    std::vector<double> samples;
    for (int l = 0; l < net.num_links(); ++l) {
      if (net.is_host_link(l) != (cls == 0)) continue;
      const double u = result.link_utilization[static_cast<std::size_t>(l)];
      if (u <= 0.0) continue;
      busy.push_back(l);
      samples.push_back(u);
    }
    if (static_cast<int>(busy.size()) < options.min_links) continue;
    for (std::size_t i = 0; i < busy.size(); ++i) {
      const double z =
          obs::robust_zscore(samples[i], samples, options.mad_floor_frac);
      if (z <= options.z_threshold) continue;
      SlowLink s;
      s.link = busy[i];
      s.name = net.link_name(busy[i]);
      s.utilization = samples[i];
      s.z = z;
      flagged.push_back(std::move(s));
    }
  }
  std::sort(flagged.begin(), flagged.end(),
            [](const SlowLink& a, const SlowLink& b) { return a.z > b.z; });
  return flagged;
}

}  // namespace dct::netsim
