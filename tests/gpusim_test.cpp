// Tests for the P100 cost model: calibration against the period's known
// training throughputs and basic monotonicity.
#include <gtest/gtest.h>

#include "gpusim/p100_model.hpp"

namespace dct::gpusim {
namespace {

TEST(P100, ResNet50ThroughputNearPeriodNumbers) {
  // P100 + cuDNN ResNet-50 training ran at roughly 170–260 img/s.
  P100Model gpu;
  const auto spec = nn::resnet50_spec();
  const double ips = gpu.images_per_second(spec, 64);
  EXPECT_GT(ips, 150.0);
  EXPECT_LT(ips, 300.0);
}

TEST(P100, GoogleNetBnFasterThanResNet) {
  // The paper's epoch times (Table 1): GoogleNetBN ≈ 155 s vs ResNet-50
  // ≈ 224 s on 8 nodes → about 1.4× higher image rate.
  P100Model gpu;
  const double g = gpu.images_per_second(nn::googlenet_bn_spec(), 64);
  const double r = gpu.images_per_second(nn::resnet50_spec(), 64);
  EXPECT_GT(g, 1.15 * r);
  EXPECT_LT(g, 2.5 * r);
}

TEST(P100, StepTimeScalesWithBatch) {
  P100Model gpu;
  const auto spec = nn::resnet50_spec();
  const double t32 = gpu.train_step_time(spec, 32);
  const double t64 = gpu.train_step_time(spec, 64);
  EXPECT_GT(t64, 1.8 * t32);
  EXPECT_LT(t64, 2.2 * t32);
}

TEST(P100, InferenceCheaperThanTraining) {
  P100Model gpu;
  const auto spec = nn::resnet50_spec();
  EXPECT_LT(gpu.inference_time(spec, 64),
            0.5 * gpu.train_step_time(spec, 64));
}

TEST(P100, TransferTimeLinear) {
  P100Model gpu;
  EXPECT_DOUBLE_EQ(gpu.transfer_time(32'000'000'000ULL), 1.0);
  EXPECT_DOUBLE_EQ(gpu.transfer_time(0), 0.0);
}

TEST(P100, SmallBatchDominatedByLaunchOverhead) {
  P100Model gpu;
  const auto spec = nn::resnet50_spec();
  // Images/s at batch 1 is much worse than at batch 64.
  const double ips1 = gpu.images_per_second(spec, 1);
  const double ips64 = gpu.images_per_second(spec, 64);
  EXPECT_LT(ips1, 0.75 * ips64);
}

}  // namespace
}  // namespace dct::gpusim
