// Tests for the asynchronous-SGD extension (the paper's §6 future work):
// protocol integrity, staleness accounting, convergence, and the
// degenerate single-worker case (which must behave like plain SGD).
#include <gtest/gtest.h>

#include "simmpi/runtime.hpp"
#include "tensor/ops.hpp"
#include "trainer/async_trainer.hpp"

namespace dct::trainer {
namespace {

AsyncConfig small_async() {
  AsyncConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.batch = 8;
  cfg.steps_per_worker = 12;
  cfg.dataset.seed = 3;
  cfg.dataset.images = 96;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.lr = 0.03;
  cfg.seed = 17;
  return cfg;
}

TEST(AsyncSgd, AppliesEveryGradientExactlyOnce) {
  const auto cfg = small_async();
  for (int ranks : {2, 3, 5}) {
    AsyncResult server;
    simmpi::Runtime::execute(ranks, [&](simmpi::Communicator& comm) {
      const auto r = run_async_sgd(comm, cfg);
      if (comm.rank() == 0) server = r;
    });
    EXPECT_EQ(server.updates,
              static_cast<std::uint64_t>((ranks - 1) * cfg.steps_per_worker));
    EXPECT_EQ(server.staleness.count(), server.updates);
    EXPECT_FALSE(server.final_params.empty());
  }
}

TEST(AsyncSgd, SingleWorkerHasZeroStaleness) {
  // With one worker the protocol is fully serial: every gradient is
  // computed on the freshest weights.
  const auto cfg = small_async();
  AsyncResult server;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    const auto r = run_async_sgd(comm, cfg);
    if (comm.rank() == 0) server = r;
  });
  EXPECT_EQ(server.staleness.max(), 0.0);
}

TEST(AsyncSgd, MultiWorkerStalenessIsRealButBounded) {
  // With ≥2 workers some gradient is always stale: both first gradients
  // are computed on version 0, and only one can land first. The other
  // bound is structural: a gradient can never be staler than the total
  // number of updates ever applied. (The classic workers−1 bound assumes
  // round-robin scheduling, which a real async system — and this one —
  // does not provide.)
  const auto cfg = small_async();
  const int ranks = 5;  // 4 workers
  AsyncResult server;
  simmpi::Runtime::execute(ranks, [&](simmpi::Communicator& comm) {
    const auto r = run_async_sgd(comm, cfg);
    if (comm.rank() == 0) server = r;
  });
  EXPECT_GE(server.staleness.max(), 1.0);
  EXPECT_LT(server.staleness.max(), static_cast<double>(server.updates));
  EXPECT_GE(server.staleness.mean(), 0.0);
}

TEST(AsyncSgd, LearnsTheSyntheticTask) {
  auto cfg = small_async();
  cfg.steps_per_worker = 40;
  AsyncResult server;
  simmpi::Runtime::execute(3, [&](simmpi::Communicator& comm) {
    const auto r = run_async_sgd(comm, cfg);
    if (comm.rank() == 0) server = r;
  });
  // Loss of the final gradients well under the ln(4) ≈ 1.39 of chance.
  EXPECT_LT(server.final_loss, 0.9);

  // And the final master weights classify held-out data above chance.
  Rng rng(cfg.seed);
  auto model = nn::make_small_cnn(cfg.model, rng);
  model->load_params(server.final_params);
  data::DatasetDef val = cfg.dataset;
  val.seed ^= 0xABCDEF;
  val.images = 64;
  data::SyntheticImageGenerator gen(val);
  tensor::Tensor images({64, 3, 8, 8});
  std::vector<std::int32_t> labels(64);
  for (std::int64_t i = 0; i < 64; ++i) {
    const auto img = gen.generate(i);
    data::pixels_to_float(
        img.pixels,
        std::span<float>(images.data() + i * 192, 192));
    labels[static_cast<std::size_t>(i)] = img.label;
  }
  const auto logits = model->forward(images, /*train=*/false);
  EXPECT_GT(tensor::top1_accuracy(logits, labels), 0.4);  // chance 0.25
}

TEST(AsyncSgd, RequiresAtLeastOneWorker) {
  simmpi::Runtime rt(1);
  EXPECT_THROW(rt.run([&](simmpi::Communicator& comm) {
                 run_async_sgd(comm, small_async());
               }),
               CheckError);
}

}  // namespace
}  // namespace dct::trainer
