// Tests for the DataParallelTable module: the Torch threading contract,
// bit-level gradient equivalence between the baseline (Fig. 3) and
// optimized (Fig. 4) designs, the structural counters the paper's §4.3
// drawbacks predict, multi-step training equivalence, and replica
// consistency after updates.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "dpt/data_parallel_table.hpp"
#include "tensor/ops.hpp"

namespace dct::dpt {
namespace {

using tensor::Tensor;

TEST(TorchThreads, CallbacksRunSerializedInOrder) {
  TorchThreads threads(4);
  std::vector<int> order;
  std::atomic<int> jobs_done{0};
  for (int i = 0; i < 8; ++i) {
    threads.add_job([&jobs_done] { jobs_done++; },
                    [&order, i] { order.push_back(i); });
  }
  threads.synchronize();
  EXPECT_EQ(jobs_done.load(), 8);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(threads.serialized_callbacks(), 8u);
  EXPECT_EQ(threads.sync_points(), 1u);
}

TEST(TorchThreads, JobsWithoutCallbacks) {
  TorchThreads threads(2);
  std::atomic<int> done{0};
  threads.add_job([&] { done++; });
  threads.add_job([&] { done++; });
  threads.synchronize();
  EXPECT_EQ(done.load(), 2);
  EXPECT_EQ(threads.serialized_callbacks(), 0u);
}

struct Fixture {
  nn::SmallCnnConfig model_cfg;
  Tensor input;
  std::vector<std::int32_t> labels;

  explicit Fixture(std::int64_t batch = 8, int classes = 4) {
    model_cfg.classes = classes;
    model_cfg.image = 8;
    input = Tensor({batch, 3, 8, 8});
    Rng rng(999);
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      input[i] = rng.next_float() * 2.0f - 1.0f;
    }
    labels.resize(static_cast<std::size_t>(batch));
    for (std::int64_t i = 0; i < batch; ++i) {
      labels[static_cast<std::size_t>(i)] =
          static_cast<std::int32_t>(i % classes);
    }
  }
};

TEST(Dpt, SingleGpuMatchesPlainModel) {
  Fixture f;
  OptimizedDpt dpt(f.model_cfg, /*gpus=*/1, /*seed=*/7);
  const float loss = dpt.forward_backward(f.input, f.labels);

  Rng rng(7);
  auto plain = nn::make_small_cnn(f.model_cfg, rng);
  plain->zero_grads();
  Tensor logits = plain->forward(f.input, true);
  Tensor grad;
  const float plain_loss =
      tensor::softmax_cross_entropy(logits, f.labels, grad);
  plain->backward(grad);

  EXPECT_NEAR(loss, plain_loss, 1e-6);
  std::vector<float> plain_grads(
      static_cast<std::size_t>(plain->param_count()));
  plain->flatten_grads(std::span<float>(plain_grads));
  const auto node = dpt.node_grads();
  ASSERT_EQ(node.size(), plain_grads.size());
  for (std::size_t i = 0; i < node.size(); ++i) {
    ASSERT_EQ(node[i], plain_grads[i]) << "grad index " << i;
  }
}

class DptEquivalenceP : public ::testing::TestWithParam<int> {};

TEST_P(DptEquivalenceP, BaselineAndOptimizedProduceIdenticalGradients) {
  const int gpus = GetParam();
  Fixture f(/*batch=*/8);
  BaselineDpt base(f.model_cfg, gpus, 42);
  OptimizedDpt opt(f.model_cfg, gpus, 42);

  const float loss_base = base.forward_backward(f.input, f.labels);
  const float loss_opt = opt.forward_backward(f.input, f.labels);
  EXPECT_NEAR(loss_base, loss_opt, 1e-6);

  const auto gb = base.node_grads();
  const auto go = opt.node_grads();
  ASSERT_EQ(gb.size(), go.size());
  for (std::size_t i = 0; i < gb.size(); ++i) {
    ASSERT_EQ(gb[i], go[i]) << "grad index " << i << " gpus " << gpus;
  }
}

INSTANTIATE_TEST_SUITE_P(GpuCounts, DptEquivalenceP,
                         ::testing::Values(1, 2, 4, 8));

TEST(Dpt, BatchNotDivisibleThrows) {
  Fixture f(/*batch=*/6);
  OptimizedDpt dpt(f.model_cfg, 4, 1);
  EXPECT_THROW(dpt.forward_backward(f.input, f.labels), CheckError);
}

TEST(Dpt, StructuralCountersMatchPaperDrawbacks) {
  const int gpus = 4;
  Fixture f(/*batch=*/8);
  BaselineDpt base(f.model_cfg, gpus, 42);
  OptimizedDpt opt(f.model_cfg, gpus, 42);
  base.forward_backward(f.input, f.labels);
  opt.forward_backward(f.input, f.labels);
  const auto sb = base.stats();
  const auto so = opt.stats();

  const auto input_bytes =
      static_cast<std::uint64_t>(f.input.numel()) * sizeof(float);
  // Drawback 1: baseline stages the whole batch on GPU 1 and scatters —
  // more H2D than the optimized direct partition, plus P2P input moves.
  EXPECT_GE(sb.h2d_bytes, input_bytes);
  EXPECT_EQ(so.h2d_bytes, input_bytes);  // exactly one copy of the batch
  EXPECT_GT(sb.p2p_bytes, so.p2p_bytes);
  // Drawback 3: strictly more serialized steps in the baseline
  // (2 callbacks per GPU + 2 syncs vs 1 callback per GPU + 1 sync).
  EXPECT_EQ(sb.serialized_callbacks, 2u * gpus);
  EXPECT_EQ(so.serialized_callbacks, static_cast<std::uint64_t>(gpus));
  EXPECT_EQ(sb.sync_points, 2u);
  EXPECT_EQ(so.sync_points, 1u);
  // Baseline gathers logits to the host for the serial criterion.
  EXPECT_GT(sb.d2h_bytes, 0u);
  EXPECT_EQ(so.d2h_bytes, 0u);
}

TEST(Dpt, MultiStepTrainingStaysEquivalent) {
  // Run several full steps (forward/backward + allreduce-less update)
  // through both tables; weights must track each other.
  const int gpus = 2;
  Fixture f(/*batch=*/8);
  BaselineDpt base(f.model_cfg, gpus, 5);
  OptimizedDpt opt(f.model_cfg, gpus, 5);
  nn::Sgd sgd(nn::SgdConfig{0.9f, 1e-4f});

  for (int step = 0; step < 5; ++step) {
    const float lb = base.forward_backward(f.input, f.labels);
    const float lo = opt.forward_backward(f.input, f.labels);
    ASSERT_NEAR(lb, lo, 1e-5) << "step " << step;
    // Apply each table's own gradients (same values ⇒ same trajectory).
    std::vector<float> gb(base.node_grads().begin(), base.node_grads().end());
    std::vector<float> go(opt.node_grads().begin(), opt.node_grads().end());
    base.apply_gradients(gb, sgd, 0.01f);
    opt.apply_gradients(go, sgd, 0.01f);
  }
  // Compare replica-0 weights.
  std::vector<float> wb(static_cast<std::size_t>(base.param_count()));
  std::vector<float> wo(wb.size());
  base.replica(0).flatten_params(std::span<float>(wb));
  opt.replica(0).flatten_params(std::span<float>(wo));
  for (std::size_t i = 0; i < wb.size(); ++i) {
    ASSERT_EQ(wb[i], wo[i]) << "weight " << i;
  }
}

TEST(Dpt, ReplicasStayIdenticalAfterUpdates) {
  const int gpus = 4;
  Fixture f(/*batch=*/8);
  OptimizedDpt dpt(f.model_cfg, gpus, 11);
  nn::Sgd sgd;
  for (int step = 0; step < 3; ++step) {
    dpt.forward_backward(f.input, f.labels);
    std::vector<float> g(dpt.node_grads().begin(), dpt.node_grads().end());
    dpt.apply_gradients(g, sgd, 0.01f);
  }
  std::vector<float> w0(static_cast<std::size_t>(dpt.param_count()));
  dpt.replica(0).flatten_params(std::span<float>(w0));
  for (int g = 1; g < gpus; ++g) {
    std::vector<float> wg(w0.size());
    dpt.replica(g).flatten_params(std::span<float>(wg));
    EXPECT_EQ(w0, wg) << "replica " << g;
  }
}

TEST(Dpt, LossDecreasesUnderTraining) {
  Fixture f(/*batch=*/8);
  OptimizedDpt dpt(f.model_cfg, 2, 3);
  nn::Sgd sgd(nn::SgdConfig{0.9f, 0.0f});
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 25; ++step) {
    const float loss = dpt.forward_backward(f.input, f.labels);
    if (step == 0) first = loss;
    last = loss;
    std::vector<float> g(dpt.node_grads().begin(), dpt.node_grads().end());
    dpt.apply_gradients(g, sgd, 0.05f);
  }
  EXPECT_LT(last, first * 0.7f);
}

TEST(Dpt, PredictUsesInferenceMode) {
  Fixture f(/*batch=*/4);
  OptimizedDpt dpt(f.model_cfg, 2, 3);
  const Tensor out = dpt.predict(f.input);
  EXPECT_EQ(out.dim(0), 4);
  EXPECT_EQ(out.dim(1), f.model_cfg.classes);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(out[i]));
  }
}

}  // namespace
}  // namespace dct::dpt
