// Fault-injection and recovery tests (DESIGN.md §9): every fault kind
// is detected (no deadlock, bounded by the receive deadline), a rank
// crash mid-collective unwinds the survivors for every allreduce
// algorithm, and the checkpoint/rollback driver turns crashes into
// bounded lost work — bit-identically on the deterministic sampling
// path.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "allreduce/algorithm.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/runtime.hpp"
#include "trainer/checkpoint_io.hpp"
#include "trainer/distributed_trainer.hpp"
#include "trainer/resilient.hpp"
#include "util/error.hpp"

namespace dct {
namespace {

using simmpi::FaultKind;
using simmpi::FaultPlan;
using simmpi::FaultRule;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

double seconds_since(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

// ---- plan parsing ----------------------------------------------------

TEST(FaultPlan, ParsesRuleSpecs) {
  const auto crash = FaultPlan::parse_rule("rank=2,step=37,kind=crash");
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_EQ(crash.rank, 2);
  EXPECT_EQ(crash.at_step, 37u);
  EXPECT_EQ(crash.at_message, FaultRule::kNoTrigger);

  const auto drop = FaultPlan::parse_rule("kind=drop,prob=0.25,rank=1");
  EXPECT_EQ(drop.kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(drop.probability, 0.25);
  EXPECT_EQ(drop.rank, 1);

  const auto delay = FaultPlan::parse_rule("kind=delay,ms=40");
  EXPECT_EQ(delay.kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ(delay.delay_ms, 40.0);
  EXPECT_EQ(delay.rank, -1);  // every rank

  EXPECT_THROW(FaultPlan::parse_rule("kind=bogus"), CheckError);
  EXPECT_THROW(FaultPlan::parse_rule("frobnicate=1,kind=drop"), CheckError);
  EXPECT_THROW(FaultPlan::parse_rule("rank=1,prob=0.5"), CheckError);  // no kind

  FaultPlan plan(1);
  plan.add_specs("rank=0,kind=drop,prob=0.5;kind=straggle,ms=2");
  EXPECT_EQ(plan.rules().size(), 2u);
  // Crash rules need a rank and a trigger.
  EXPECT_THROW(FaultPlan(1).add(FaultPlan::parse_rule("kind=crash")),
               CheckError);
  EXPECT_THROW(FaultPlan(1).add(FaultPlan::parse_rule("rank=1,kind=crash")),
               CheckError);
}

TEST(FaultPlan, ParsesCorruptAndTruncateKinds) {
  const auto corrupt = FaultPlan::parse_rule("rank=3,kind=corrupt,prob=0.1");
  EXPECT_EQ(corrupt.kind, FaultKind::kCorrupt);
  EXPECT_EQ(corrupt.rank, 3);
  EXPECT_DOUBLE_EQ(corrupt.probability, 0.1);

  const auto truncate = FaultPlan::parse_rule("kind=truncate");
  EXPECT_EQ(truncate.kind, FaultKind::kTruncate);
  EXPECT_EQ(truncate.rank, -1);  // every rank

  EXPECT_STREQ(to_string(FaultKind::kCorrupt), "corrupt");
  EXPECT_STREQ(to_string(FaultKind::kTruncate), "truncate");
}

TEST(FaultPlan, RejectsInvalidRuleConstruction) {
  // Misconfigured injection must fail at construction, not surface as
  // baffling behavior mid-run.
  EXPECT_THROW(FaultPlan(1).add({.kind = FaultKind::kDrop,
                                 .probability = 1.5}),
               CheckError);
  EXPECT_THROW(FaultPlan(1).add({.kind = FaultKind::kCorrupt,
                                 .probability = -0.1}),
               CheckError);
  EXPECT_THROW(FaultPlan(1).add({.kind = FaultKind::kDrop, .rank = -2}),
               CheckError);
  EXPECT_THROW(FaultPlan(1).add({.kind = FaultKind::kDelay,
                                 .delay_ms = -1.0}),
               CheckError);

  FaultPlan plan(1);
  plan.add({.kind = FaultKind::kDrop, .rank = 1, .probability = 0.5});
  // Binding to an empty world, or to one the rules overshoot, is a
  // configuration error.
  EXPECT_THROW(plan.bind(0), CheckError);
  EXPECT_THROW(plan.bind(1), CheckError);  // rule targets rank 1
  plan.bind(2);
  // The plan is frozen once installed: late rule additions would race
  // the sender threads.
  EXPECT_THROW(plan.add({.kind = FaultKind::kDrop}), CheckError);
}

// ---- detection: one test per fault kind ------------------------------

TEST(FaultInjection, DroppedMessageTimesOutInsteadOfDeadlocking) {
  FaultPlan plan(11);
  plan.add({.kind = FaultKind::kDrop, .rank = 0, .probability = 1.0});
  simmpi::Runtime rt(2);
  rt.transport().set_recv_deadline(milliseconds(200));
  rt.transport().install_fault_plan(&plan);
  const auto start = steady_clock::now();
  EXPECT_THROW(rt.run([](simmpi::Communicator& comm) {
                 if (comm.rank() == 0) {
                   comm.send_value<int>(7, 1);
                 } else {
                   comm.recv_value<int>(0);
                 }
               }),
               simmpi::Timeout);
  EXPECT_LT(seconds_since(start), 5.0);  // deadline, not deadlock
  EXPECT_GT(plan.injected(), 0u);
}

TEST(FaultInjection, TimeoutMessageNamesPeerTagAndDeadline) {
  // The triage surface: a deadline miss must say who was being waited
  // on, on which tag, and how long the wait ran versus the budget —
  // enough to tell a straggler from a wedge without a debugger.
  FaultPlan plan(15);
  plan.add({.kind = FaultKind::kDrop, .rank = 0, .probability = 1.0});
  simmpi::Runtime rt(2);
  rt.transport().set_recv_deadline(milliseconds(200));
  rt.transport().install_fault_plan(&plan);
  std::mutex mu;
  std::string message;
  try {
    rt.run([&](simmpi::Communicator& comm) {
      if (comm.rank() == 0) {
        comm.send_value<int>(7, 1);
      } else {
        try {
          comm.recv_value<int>(0);
        } catch (const simmpi::Timeout& t) {
          std::lock_guard<std::mutex> lock(mu);
          message = t.what();
          throw;
        }
      }
    });
    FAIL() << "dropped message must surface as Timeout";
  } catch (const simmpi::Timeout&) {
  }
  EXPECT_NE(message.find("ms elapsed vs 200 ms deadline"), std::string::npos)
      << message;
  EXPECT_NE(message.find("waiting on peer global rank 0"), std::string::npos)
      << message;
  EXPECT_NE(message.find("tag"), std::string::npos) << message;
}

TEST(FaultInjection, DelayUnderDeadlineIsDeliveredLate) {
  FaultPlan plan(12);
  plan.add({.kind = FaultKind::kDelay, .rank = 0, .probability = 1.0,
            .delay_ms = 100.0});
  simmpi::Runtime rt(2);
  rt.transport().set_recv_deadline(milliseconds(3000));
  rt.transport().install_fault_plan(&plan);
  rt.run([](simmpi::Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(42, 1);
    } else {
      const auto start = steady_clock::now();
      const int v = comm.recv_value<int>(0);
      EXPECT_EQ(v, 42);
      // Held back by the injected visibility delay (minus scheduling
      // slop).
      EXPECT_GE(seconds_since(start), 0.05);
    }
  });
  EXPECT_GT(plan.injected(), 0u);
}

TEST(FaultInjection, DelayPastDeadlineTimesOut) {
  FaultPlan plan(13);
  plan.add({.kind = FaultKind::kDelay, .rank = 0, .probability = 1.0,
            .delay_ms = 60000.0});
  simmpi::Runtime rt(2);
  rt.transport().set_recv_deadline(milliseconds(150));
  rt.transport().install_fault_plan(&plan);
  const auto start = steady_clock::now();
  EXPECT_THROW(rt.run([](simmpi::Communicator& comm) {
                 if (comm.rank() == 0) {
                   comm.send_value<int>(1, 1);
                 } else {
                   comm.recv_value<int>(0);
                 }
               }),
               simmpi::Timeout);
  EXPECT_LT(seconds_since(start), 5.0);
  EXPECT_GT(plan.injected(), 0u);
}

TEST(FaultInjection, DuplicatesAreFilteredEvenAcrossTagReuse) {
  // Duplicate every message on every rank and run the multi-step ring
  // allgather, which reuses one tag across p-1 steps — the pattern a
  // naive duplicate would corrupt by shadowing the next step's message.
  FaultPlan plan(14);
  plan.add({.kind = FaultKind::kDuplicate, .probability = 1.0});
  simmpi::Runtime rt(4);
  rt.transport().set_recv_deadline(milliseconds(5000));
  rt.transport().install_fault_plan(&plan);
  rt.run([](simmpi::Communicator& comm) {
    for (int iter = 0; iter < 5; ++iter) {
      const int mine = 100 * iter + comm.rank();
      std::vector<int> all(static_cast<std::size_t>(comm.size()));
      comm.allgather(std::span<const int>(&mine, 1), std::span<int>(all));
      for (int r = 0; r < comm.size(); ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)], 100 * iter + r);
      }
    }
  });
  EXPECT_GT(plan.injected(), 0u);
}

TEST(FaultInjection, StragglerSlowsButCompletes) {
  FaultPlan plan(15);
  plan.add({.kind = FaultKind::kStraggle, .rank = 0, .probability = 1.0,
            .delay_ms = 1.0});
  simmpi::Runtime rt(2);
  rt.transport().set_recv_deadline(milliseconds(5000));
  rt.transport().install_fault_plan(&plan);
  rt.run([](simmpi::Communicator& comm) {
    std::vector<float> data(64, static_cast<float>(comm.rank() + 1));
    for (int i = 0; i < 5; ++i) {
      comm.allreduce_inplace(std::span<float>(data),
                             [](float a, float b) { return a + b; });
    }
  });
  EXPECT_GT(plan.injected(), 0u);
}

TEST(FaultInjection, CrashAtMessageIsDetectedWithinDeadline) {
  FaultPlan plan(16);
  plan.add({.kind = FaultKind::kCrash, .rank = 1, .at_message = 2});
  simmpi::Runtime rt(2);
  rt.transport().set_recv_deadline(milliseconds(1000));
  rt.transport().install_fault_plan(&plan);
  const auto start = steady_clock::now();
  bool detected = false;
  try {
    rt.run([](simmpi::Communicator& comm) {
      std::vector<float> data(64, 1.0f);
      for (int i = 0; i < 20; ++i) {
        comm.allreduce_inplace(std::span<float>(data),
                               [](float a, float b) { return a + b; });
      }
    });
  } catch (const simmpi::RankFailed& rf) {
    detected = true;
    EXPECT_EQ(rf.rank(), 1);
  } catch (const simmpi::Timeout&) {
    detected = true;
  }
  EXPECT_TRUE(detected);
  EXPECT_LT(seconds_since(start), 5.0);
  EXPECT_EQ(rt.dead_ranks(), std::vector<int>{1});
}

// ---- kill one rank mid-collective, every algorithm × rank counts ----

TEST(FaultInjection, CrashMidCollectiveUnwindsEveryAllreduceAlgorithm) {
  for (const auto& name : allreduce::algorithm_names()) {
    for (const int p : {2, 4, 8}) {
      SCOPED_TRACE(name + " on " + std::to_string(p) + " ranks");
      FaultPlan plan(17);
      plan.add({.kind = FaultKind::kCrash, .rank = 1, .at_message = 3});
      simmpi::Runtime rt(p);
      rt.transport().set_recv_deadline(milliseconds(1500));
      rt.transport().install_fault_plan(&plan);
      const auto algo = allreduce::make_algorithm(name);
      const auto start = steady_clock::now();
      bool detected = false;
      try {
        rt.run([&](simmpi::Communicator& comm) {
          std::vector<float> data(256,
                                  static_cast<float>(comm.rank() + 1));
          for (int i = 0; i < 50; ++i) {
            algo->run(comm, std::span<float>(data));
          }
        });
      } catch (const simmpi::RankFailed&) {
        detected = true;
      } catch (const simmpi::Timeout&) {
        detected = true;
      } catch (const simmpi::Aborted&) {
        detected = true;  // secondary teardown surfaced first
      }
      EXPECT_TRUE(detected) << "survivors deadlocked or finished bogusly";
      // Bounded by the deadline plus teardown slop, never a deadlock.
      EXPECT_LT(seconds_since(start), 10.0);
      EXPECT_TRUE(rt.transport().rank_dead(1));
    }
  }
}

// ---- checkpoint/rollback recovery -----------------------------------

trainer::TrainerConfig small_trainer_config() {
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 2;
  cfg.dataset.seed = 11;
  cfg.dataset.images = 64;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.base_lr = 0.02;
  cfg.seed = 5;
  return cfg;
}

TEST(Recovery, CrashRollsBackAndContinues) {
  const std::string dir =
      testing::TempDir() + "dct_fault_rollback_ckpt";
  std::filesystem::remove_all(dir);

  trainer::ResilientConfig rcfg;
  rcfg.trainer = small_trainer_config();
  rcfg.trainer.checkpoint_dir = dir;
  rcfg.trainer.checkpoint_every = 4;
  rcfg.ranks = 2;
  rcfg.total_iterations = 12;
  rcfg.recv_deadline = milliseconds(3000);

  FaultPlan plan(18);
  plan.add({.kind = FaultKind::kCrash, .rank = 1, .at_step = 9});
  const auto res = trainer::run_resilient(rcfg, &plan);

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.rollbacks, 1u);
  EXPECT_EQ(res.failures.size(), 1u);
  EXPECT_GT(res.faults_injected, 0u);
  // Rollback can only lose work since the last checkpoint.
  EXPECT_LE(res.lost_steps,
            static_cast<std::uint64_t>(rcfg.trainer.checkpoint_every));
  // Completion published a final checkpoint.
  const auto manifest = trainer::read_manifest(dir, rcfg.ranks);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(*manifest, rcfg.total_iterations);
  std::filesystem::remove_all(dir);
}

TEST(Recovery, CrashResumeIsBitIdenticalToUninterrupted) {
  auto cfg = small_trainer_config();
  cfg.deterministic_global_sampling = true;
  cfg.dimd.groups = 2;  // every learner holds the full dataset

  // Reference: the same run with no faults and no checkpointing.
  std::vector<float> expected;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < 10; ++i) trainer.step();
    if (comm.rank() == 0) expected = trainer.snapshot_params();
  });
  ASSERT_FALSE(expected.empty());

  // Crash at step 7, roll back to the checkpoint at 6, finish at 10.
  const std::string dir = testing::TempDir() + "dct_fault_bitident_ckpt";
  std::filesystem::remove_all(dir);
  trainer::ResilientConfig rcfg;
  rcfg.trainer = cfg;
  rcfg.trainer.checkpoint_dir = dir;
  rcfg.trainer.checkpoint_every = 3;
  rcfg.ranks = 2;
  rcfg.total_iterations = 10;
  rcfg.recv_deadline = milliseconds(3000);
  FaultPlan plan(19);
  plan.add({.kind = FaultKind::kCrash, .rank = 1, .at_step = 7});
  const auto res = trainer::run_resilient(rcfg, &plan);

  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.rollbacks, 1u);
  // Bit-identical: checkpoint + resume must not perturb the trajectory.
  ASSERT_EQ(res.final_params.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(res.final_params[i], expected[i]) << "param " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(Recovery, ResumeRestoresExactTrainerState) {
  // Plain save/resume round trip without faults: train 5 steps,
  // checkpoint, train 3 more; a fresh trainer resumed from the
  // checkpoint and stepped 3 times must land on identical parameters.
  auto cfg = small_trainer_config();
  cfg.deterministic_global_sampling = true;
  cfg.dimd.groups = 2;
  const std::string dir = testing::TempDir() + "dct_fault_resume_ckpt";
  std::filesystem::remove_all(dir);
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 5;

  std::vector<float> straight;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < 8; ++i) trainer.step();  // checkpoints at 5
    if (comm.rank() == 0) straight = trainer.snapshot_params();
  });

  std::vector<float> resumed;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    ASSERT_TRUE(trainer.resume());
    EXPECT_EQ(trainer.iteration(), 5u);
    while (trainer.iteration() < 8) trainer.step();
    if (comm.rank() == 0) resumed = trainer.snapshot_params();
  });
  EXPECT_EQ(straight, resumed);
  std::filesystem::remove_all(dir);
}

TEST(Recovery, TruncatedCheckpointSetIsSkippedOnResume) {
  // A crash mid-write (or post-hoc damage) can leave the manifest's
  // checkpoint set incomplete; resume must fall back to the newest set
  // that fully validates instead of failing or restoring garbage.
  auto cfg = small_trainer_config();
  const std::string dir = testing::TempDir() + "dct_fault_truncated_ckpt";
  std::filesystem::remove_all(dir);
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 3;

  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < 6; ++i) trainer.step();  // sets at 3 and 6
  });
  ASSERT_EQ(trainer::find_restorable_checkpoint(dir, 2), 6u);

  // Truncate rank 1's file of the manifest's set: the set no longer
  // validates, so the scan must pick the older complete set.
  {
    const std::string victim = trainer::rank_checkpoint_path(dir, 6, 1);
    const auto full = std::filesystem::file_size(victim);
    std::filesystem::resize_file(victim, full / 2);
  }
  EXPECT_FALSE(trainer::checkpoint_set_valid(dir, 6, 2));
  ASSERT_EQ(trainer::find_restorable_checkpoint(dir, 2), 3u);

  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    ASSERT_TRUE(trainer.resume());
    EXPECT_EQ(trainer.iteration(), 3u);
  });

  // Damage the last remaining set too: nothing restorable is left.
  {
    const std::string victim = trainer::rank_checkpoint_path(dir, 3, 0);
    std::filesystem::resize_file(victim, 8);
  }
  EXPECT_EQ(trainer::find_restorable_checkpoint(dir, 2), std::nullopt);
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    EXPECT_FALSE(trainer.resume());
  });
  std::filesystem::remove_all(dir);
}

TEST(Recovery, BitRottedNewestCheckpointFallsBackToOlderSet) {
  // Silent bit-rot at rest: flip one payload byte in *every* rank file
  // of the newest checkpoint set. Each file still exists at full size,
  // so only the CRC seal can tell — the restorable-checkpoint scan
  // must fall back to the older intact set and training must resume
  // from there and finish.
  auto cfg = small_trainer_config();
  const std::string dir = testing::TempDir() + "dct_fault_bitrot_ckpt";
  std::filesystem::remove_all(dir);
  cfg.checkpoint_dir = dir;
  cfg.checkpoint_every = 2;

  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < 6; ++i) trainer.step();  // sets at 2, 4, 6
  });
  ASSERT_EQ(trainer::find_restorable_checkpoint(dir, 2), 6u);

  for (int r = 0; r < 2; ++r) {
    const std::string victim = trainer::rank_checkpoint_path(dir, 6, r);
    const auto size = std::filesystem::file_size(victim);
    std::FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
    EXPECT_EQ(std::filesystem::file_size(victim), size)
        << "bit-rot must not change the file size";
  }
  EXPECT_FALSE(trainer::checkpoint_set_valid(dir, 6, 2));
  ASSERT_EQ(trainer::find_restorable_checkpoint(dir, 2), 4u);

  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    ASSERT_TRUE(trainer.resume());
    EXPECT_EQ(trainer.iteration(), 4u);
    while (trainer.iteration() < 8) trainer.step();
    EXPECT_EQ(trainer.iteration(), 8u);
  });
  // The resumed run republished checkpoints past the rotted set.
  EXPECT_EQ(trainer::find_restorable_checkpoint(dir, 2), 8u);
  std::filesystem::remove_all(dir);
}

TEST(Recovery, TrainerCheckpointFilesAreCrcSealed) {
  trainer::TrainerState st;
  st.iteration = 42;
  st.shuffles = 3;
  st.params = {1.0f, 2.0f, 3.0f};
  st.velocities = {0.1f, 0.2f, 0.3f};
  const std::string path = testing::TempDir() + "dct_trainer_state.bin";
  trainer::write_trainer_state(st, path);
  const auto back = trainer::read_trainer_state(path);
  EXPECT_EQ(back.iteration, 42u);
  EXPECT_EQ(back.shuffles, 3u);
  EXPECT_EQ(back.params, st.params);
  EXPECT_EQ(back.velocities, st.velocities);

  // Flip one payload byte: the CRC must catch it.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, 40, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  EXPECT_THROW(trainer::read_trainer_state(path), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dct
