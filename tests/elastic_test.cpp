// Elastic recovery tests (DESIGN.md §11, §14): the shrink agreement
// protocol produces a dense survivor communicator (or fails fast when
// the coordinator is gone), the grow handshake re-admits lobby ranks
// (hot spares or resurrected casualties) under a fresh context,
// post-shrink and post-grow collectives are bit-identical to a fresh
// world of the same size, DIMD replication makes repartitioning
// lossless, and the elastic driver heals crashes — shrink, then grow
// from the spare pool — finishing without rollbacks and with post-grow
// training bit-identical to an uninterrupted same-size world.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "allreduce/algorithm.hpp"
#include "data/dimd.hpp"
#include "data/synthetic.hpp"
#include "obs/counters.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/runtime.hpp"
#include "trainer/checkpoint_io.hpp"
#include "trainer/distributed_trainer.hpp"
#include "trainer/elastic.hpp"
#include "util/error.hpp"

namespace dct {
namespace {

using simmpi::FaultKind;
using simmpi::FaultPlan;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

double seconds_since(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

/// Fail-stop the calling rank the way fault injection does: throw
/// RankFailed(self); the runtime marks the rank dead silently.
[[noreturn]] void die(simmpi::Communicator& comm) {
  throw simmpi::RankFailed(comm.global_rank(comm.rank()),
                           "injected fail-stop (test)");
}

// ---- Communicator::shrink --------------------------------------------

TEST(Shrink, DropsDeadRankAndRenumbersDensely) {
  simmpi::Runtime rt(4);
  rt.transport().set_recv_deadline(milliseconds(2000));
  std::mutex mu;
  std::vector<std::vector<int>> seen_members(3);
  rt.run([&](simmpi::Communicator& comm) {
    if (comm.rank() == 2) die(comm);
    auto sr = comm.shrink(milliseconds(8000));
    EXPECT_EQ(sr.dead_old_ranks, std::vector<int>{2});
    EXPECT_EQ(sr.survivor_old_ranks, (std::vector<int>{0, 1, 3}));
    EXPECT_EQ(sr.comm.size(), 3);
    // New rank = index into the ascending survivor list.
    const int expected_new = comm.rank() == 3 ? 2 : comm.rank();
    EXPECT_EQ(sr.comm.rank(), expected_new);

    // The shrunken communicator is fully collective-capable.
    const auto olds = sr.comm.allgather_value(comm.rank());
    {
      std::lock_guard<std::mutex> lock(mu);
      seen_members[static_cast<std::size_t>(sr.comm.rank())] = olds;
    }
    std::vector<float> data(32, static_cast<float>(comm.rank() + 1));
    sr.comm.allreduce_inplace(std::span<float>(data),
                              [](float a, float b) { return a + b; });
    for (float v : data) EXPECT_EQ(v, 1.0f + 2.0f + 4.0f);
  });
  EXPECT_EQ(rt.dead_ranks(), std::vector<int>{2});
  for (const auto& m : seen_members) {
    EXPECT_EQ(m, (std::vector<int>{0, 1, 3}));
  }
}

TEST(Shrink, NoDeathsReformsFullMembershipUnderFreshContext) {
  simmpi::Runtime rt(3);
  rt.transport().set_recv_deadline(milliseconds(2000));
  rt.run([&](simmpi::Communicator& comm) {
    auto sr = comm.shrink(milliseconds(8000));
    EXPECT_TRUE(sr.dead_old_ranks.empty());
    EXPECT_EQ(sr.survivor_old_ranks, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(sr.comm.size(), 3);
    EXPECT_EQ(sr.comm.rank(), comm.rank());
    int sum = 0;
    for (int v : sr.comm.allgather_value(sr.comm.rank())) sum += v;
    EXPECT_EQ(sum, 3);
  });
}

TEST(Shrink, CoordinatorDeathSurfacesAsRankFailed) {
  simmpi::Runtime rt(3);
  rt.transport().set_recv_deadline(milliseconds(1000));
  std::atomic<int> detected{0};
  const auto start = steady_clock::now();
  EXPECT_THROW(
      rt.run([&](simmpi::Communicator& comm) {
        if (comm.rank() == 0) die(comm);
        try {
          comm.shrink(milliseconds(8000));
          FAIL() << "shrink without a coordinator must not succeed";
        } catch (const simmpi::RankFailed& rf) {
          EXPECT_EQ(rf.rank(), 0);
          detected.fetch_add(1);
          throw;
        }
        // The other survivor may instead see Aborted once the first
        // detector's rethrow tears the world down — let it propagate.
      }),
      simmpi::RankFailed);
  EXPECT_GE(detected.load(), 1);
  EXPECT_LT(seconds_since(start), 30.0);  // deadline, not a hang
}

TEST(Shrink, RepeatedShrinksKeepOriginalRankMapping) {
  simmpi::Runtime rt(5);
  rt.transport().set_recv_deadline(milliseconds(2000));
  rt.run([&](simmpi::Communicator& comm) {
    const int original = comm.rank();
    if (original == 1) die(comm);
    auto first = comm.shrink(milliseconds(8000));
    EXPECT_EQ(first.survivor_old_ranks, (std::vector<int>{0, 2, 3, 4}));
    if (original == 3) die(first.comm);
    auto second = first.comm.shrink(milliseconds(8000));
    // Old ranks here are ranks in `first.comm`; rank 3 of the original
    // world was rank 2 there.
    EXPECT_EQ(second.dead_old_ranks, std::vector<int>{2});
    EXPECT_EQ(second.comm.size(), 3);
    // Composing the two maps recovers the original world ranks.
    std::vector<int> originals;
    for (int r : second.survivor_old_ranks) {
      originals.push_back(
          first.survivor_old_ranks[static_cast<std::size_t>(r)]);
    }
    EXPECT_EQ(originals, (std::vector<int>{0, 2, 4}));
  });
}

// ---- post-shrink collectives vs a fresh world ------------------------

TEST(Shrink, SurvivorCollectivesMatchFreshWorldBitExactly) {
  // 8 ranks, rank 5 dies; multicolor and ring allreduce on the
  // 7-survivor communicator must be bit-identical to a fresh 7-rank
  // world fed the same per-survivor inputs.
  constexpr int kElems = 257;  // odd, not divisible by 7
  const std::vector<int> survivors{0, 1, 2, 3, 4, 6, 7};
  auto input = [](int old_rank) {
    std::vector<float> v(kElems);
    for (int i = 0; i < kElems; ++i) {
      v[static_cast<std::size_t>(i)] =
          0.25f * static_cast<float>((old_rank + 1) * (i % 13 + 1));
    }
    return v;
  };

  for (const std::string name : {"multicolor", "ring"}) {
    SCOPED_TRACE(name);
    std::vector<float> fresh;
    {
      const auto algo = allreduce::make_algorithm(name);
      simmpi::Runtime rt(7);
      rt.run([&](simmpi::Communicator& comm) {
        auto data =
            input(survivors[static_cast<std::size_t>(comm.rank())]);
        algo->run(comm, std::span<float>(data));
        if (comm.rank() == 0) fresh = data;
      });
    }
    ASSERT_EQ(fresh.size(), static_cast<std::size_t>(kElems));

    std::vector<float> shrunken;
    {
      const auto algo = allreduce::make_algorithm(name);
      simmpi::Runtime rt(8);
      rt.transport().set_recv_deadline(milliseconds(2000));
      rt.run([&](simmpi::Communicator& comm) {
        // Exercise the algorithm at p=8 first so the shrunken run also
        // covers the world-size switch (multicolor's per-p tree cache).
        std::vector<float> warm(64, 1.0f);
        algo->run(comm, std::span<float>(warm));
        if (comm.rank() == 5) die(comm);
        auto sr = comm.shrink(milliseconds(8000));
        auto data = input(comm.rank());
        algo->run(sr.comm, std::span<float>(data));
        if (sr.comm.rank() == 0) shrunken = data;
      });
    }
    // Bit-identical, not approximately equal.
    ASSERT_EQ(shrunken.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      ASSERT_EQ(shrunken[i], fresh[i]) << "element " << i;
    }
  }
}

// ---- Communicator::grow ----------------------------------------------

TEST(Grow, RegrowsToFullMembershipWithJoiner) {
  // 8 trainer ranks plus one idle lobby rank. Rank 5 dies, the
  // survivors shrink to 7, then grow back to 8 by admitting the idle
  // rank. Collectives on the grown communicator must be bit-identical
  // to a fresh 8-rank world fed the same per-rank inputs.
  constexpr int kElems = 193;  // odd, not divisible by 8
  auto input = [](int rank) {
    std::vector<float> v(kElems);
    for (int i = 0; i < kElems; ++i) {
      v[static_cast<std::size_t>(i)] =
          0.5f * static_cast<float>((rank + 2) * (i % 11 + 1));
    }
    return v;
  };

  for (const std::string name : {"multicolor", "ring"}) {
    SCOPED_TRACE(name);
    std::vector<float> fresh;
    {
      const auto algo = allreduce::make_algorithm(name);
      simmpi::Runtime rt(8);
      rt.run([&](simmpi::Communicator& comm) {
        auto data = input(comm.rank());
        algo->run(comm, std::span<float>(data));
        if (comm.rank() == 0) fresh = data;
      });
    }
    ASSERT_EQ(fresh.size(), static_cast<std::size_t>(kElems));

    std::vector<float> grown;
    std::vector<int> admitted;
    {
      const auto algo = allreduce::make_algorithm(name);
      simmpi::Runtime rt(9);  // global rank 8 idles in the lobby
      rt.transport().set_recv_deadline(milliseconds(2000));
      rt.run([&](simmpi::Communicator& world) {
        const int g = world.rank();
        auto comm = world.split(g >= 8 ? 1 : 0, g);
        if (g >= 8) {
          auto joined = simmpi::Communicator::await_join(
              rt.transport(), g, milliseconds(8000), [] { return true; });
          ASSERT_TRUE(joined.has_value());
          EXPECT_EQ(joined->size(), 8);
          EXPECT_EQ(joined->rank(), 7);  // appended after the survivors
          EXPECT_EQ(joined->global_rank(joined->rank()), 8);
          auto data = input(joined->rank());
          algo->run(*joined, std::span<float>(data));
          return;
        }
        // Exercise the algorithm at p=8 first so the grown run also
        // covers the world-size switch back up (multicolor's per-p
        // tree cache must rebuild for the regrown size).
        std::vector<float> warm(64, 1.0f);
        algo->run(comm, std::span<float>(warm));
        if (g == 5) die(comm);
        auto sr = comm.shrink(milliseconds(8000));
        std::vector<int> invitees;
        if (sr.comm.rank() == 0) invitees = {8};
        auto gr = sr.comm.grow(std::span<const int>(invitees),
                               milliseconds(8000));
        EXPECT_EQ(gr.comm.size(), 8);
        // Survivors keep their shrunken rank under the fresh context.
        EXPECT_EQ(gr.comm.rank(), sr.comm.rank());
        if (gr.comm.rank() == 0) admitted = gr.joiner_global_ranks;
        auto data = input(gr.comm.rank());
        algo->run(gr.comm, std::span<float>(data));
        if (gr.comm.rank() == 0) grown = data;
      });
    }
    EXPECT_EQ(admitted, std::vector<int>{8});
    // Bit-identical, not approximately equal.
    ASSERT_EQ(grown.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      ASSERT_EQ(grown[i], fresh[i]) << "element " << i;
    }
  }
}

TEST(Grow, RestartedRankReenlistsAfterResurrection) {
  // A "restarted" rank: fail-stop (mark dead), wait for the survivors'
  // shrink to acknowledge the loss, then resurrect its transport state
  // and re-enter the lobby. The survivors grow it back in and the full
  // world is collective-capable again.
  simmpi::Runtime rt(4);
  rt.transport().set_recv_deadline(milliseconds(2000));
  std::atomic<bool> reenlisted{false};
  rt.run([&](simmpi::Communicator& comm) {
    if (comm.rank() == 2) {
      rt.transport().mark_rank_dead(2);
      while (!rt.transport().rank_death_acknowledged(2)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      rt.transport().resurrect_rank(2);
      reenlisted.store(true);
      auto joined = simmpi::Communicator::await_join(
          rt.transport(), 2, milliseconds(8000), [] { return true; });
      ASSERT_TRUE(joined.has_value());
      EXPECT_EQ(joined->size(), 4);
      EXPECT_EQ(joined->rank(), 3);  // appended after the 3 survivors
      int sum = 0;
      for (int v : joined->allgather_value(
               joined->global_rank(joined->rank()))) {
        sum += v;
      }
      EXPECT_EQ(sum, 0 + 1 + 3 + 2);
      return;
    }
    auto sr = comm.shrink(milliseconds(8000));
    EXPECT_EQ(sr.dead_old_ranks, std::vector<int>{2});
    EXPECT_EQ(sr.comm.size(), 3);
    // Resurrection purges the mailbox, so an INVITE sent before the
    // restarted rank cleared its state would be lost — wait for it.
    while (!reenlisted.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::vector<int> invitees;
    if (sr.comm.rank() == 0) invitees = {2};
    auto gr =
        sr.comm.grow(std::span<const int>(invitees), milliseconds(8000));
    EXPECT_EQ(gr.comm.size(), 4);
    EXPECT_EQ(gr.comm.rank(), sr.comm.rank());
    int sum = 0;
    for (int v : gr.comm.allgather_value(gr.comm.global_rank(gr.comm.rank()))) {
      sum += v;
    }
    EXPECT_EQ(sum, 0 + 1 + 3 + 2);
  });
  // The resurrection cleared the death flag: the run ends clean.
  EXPECT_TRUE(rt.dead_ranks().empty());
}

TEST(Grow, WedgedSpareIsAbandonedAfterBoundedInviteRetries) {
  // A spare that never enters the lobby must not hold the grow hostage
  // for the whole join deadline: the coordinator re-sends the INVITE
  // over a handful of exponentially-widening windows (~775 ms total),
  // then abandons the invitee and reforms with the ranks it has.
  simmpi::Runtime rt(3);
  rt.transport().set_recv_deadline(milliseconds(2000));
  std::atomic<bool> done{false};
  rt.run([&](simmpi::Communicator& world) {
    const int g = world.rank();
    auto comm = world.split(g >= 2 ? 1 : 0, g);
    if (g >= 2) {
      // Wedged: parked on a flag, never calling await_join.
      while (!done.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return;
    }
    const auto start = steady_clock::now();
    std::vector<int> invitees;
    if (comm.rank() == 0) invitees = {2};
    // The join deadline is deliberately huge: the bounded INVITE retry
    // loop, not this deadline, must decide when to give up.
    auto gr = comm.grow(std::span<const int>(invitees), milliseconds(20000));
    EXPECT_LT(seconds_since(start), 5.0)
        << "abandoning a wedged invitee must not consume the deadline";
    EXPECT_TRUE(gr.joiner_global_ranks.empty());
    EXPECT_EQ(gr.comm.size(), 2);
    // The reformed communicator is fully collective-capable.
    int sum = 0;
    for (int v : gr.comm.allgather_value(gr.comm.rank())) sum += v;
    EXPECT_EQ(sum, 1);
    done.store(true);
  });
}

TEST(Grow, LateSpareIsAdmittedWithinTheRetryWindows) {
  // A spare that misses the first INVITE windows (slow to reach the
  // lobby) is still admitted by a re-sent INVITE, and the duplicate
  // INVITEs buffered in its mailbox are harmless.
  simmpi::Runtime rt(3);
  rt.transport().set_recv_deadline(milliseconds(2000));
  rt.run([&](simmpi::Communicator& world) {
    const int g = world.rank();
    auto comm = world.split(g >= 2 ? 1 : 0, g);
    if (g >= 2) {
      // Sleep past the first two INVITE windows (25 + 50 ms).
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      auto joined = simmpi::Communicator::await_join(
          rt.transport(), g, milliseconds(8000), [] { return true; });
      ASSERT_TRUE(joined.has_value());
      EXPECT_EQ(joined->size(), 3);
      EXPECT_EQ(joined->rank(), 2);  // appended after the survivors
      int sum = 0;
      for (int v :
           joined->allgather_value(joined->global_rank(joined->rank()))) {
        sum += v;
      }
      EXPECT_EQ(sum, 0 + 1 + 2);
      return;
    }
    const auto start = steady_clock::now();
    std::vector<int> invitees;
    if (comm.rank() == 0) invitees = {2};
    auto gr = comm.grow(std::span<const int>(invitees), milliseconds(8000));
    EXPECT_LT(seconds_since(start), 5.0);
    EXPECT_EQ(gr.comm.size(), 3);
    if (gr.comm.rank() == 0) {
      EXPECT_EQ(gr.joiner_global_ranks, std::vector<int>{2});
    }
    int sum = 0;
    for (int v : gr.comm.allgather_value(gr.comm.global_rank(gr.comm.rank()))) {
      sum += v;
    }
    EXPECT_EQ(sum, 0 + 1 + 2);
  });
}

TEST(Grow, ZeroJoinersReformsUnderFreshContext) {
  // A grow that admits nobody degenerates to a full-membership reform:
  // same ranks, fresh context, still collective-capable.
  simmpi::Runtime rt(3);
  rt.transport().set_recv_deadline(milliseconds(2000));
  rt.run([&](simmpi::Communicator& comm) {
    auto gr = comm.grow({}, milliseconds(8000));
    EXPECT_TRUE(gr.joiner_global_ranks.empty());
    EXPECT_EQ(gr.comm.size(), 3);
    EXPECT_EQ(gr.comm.rank(), comm.rank());
    int sum = 0;
    for (int v : gr.comm.allgather_value(gr.comm.rank())) sum += v;
    EXPECT_EQ(sum, 3);
  });
}

// ---- DIMD replication ------------------------------------------------

TEST(DimdReplication, ShardHolderAndRecoverabilityMath) {
  using data::DimdStore;
  EXPECT_EQ(DimdStore::shard_holders(0, 4, 2), (std::vector<int>{0, 3}));
  EXPECT_EQ(DimdStore::shard_holders(2, 4, 3), (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(DimdStore::shard_holders(1, 4, 1), std::vector<int>{1});
  // Replication clamps to the shard count.
  EXPECT_EQ(DimdStore::shard_holders(0, 2, 5).size(), 2u);

  const std::vector<int> none;
  EXPECT_TRUE(DimdStore::recoverable(4, 1, none));
  const std::vector<int> one{1};
  EXPECT_FALSE(DimdStore::recoverable(4, 1, one));  // r=1: any death fatal
  EXPECT_TRUE(DimdStore::recoverable(4, 2, one));
  const std::vector<int> adjacent{1, 2};
  // Shard 2's holders {2, 1} are both dead.
  EXPECT_FALSE(DimdStore::recoverable(4, 2, adjacent));
  const std::vector<int> spread{0, 2};
  EXPECT_TRUE(DimdStore::recoverable(4, 2, spread));
  EXPECT_TRUE(DimdStore::recoverable(4, 4, {std::vector<int>{0, 1, 2}}));
}

TEST(DimdReplication, RepartitionAfterDeathPreservesTheDataset) {
  simmpi::Runtime rt(4);
  rt.run([&](simmpi::Communicator& comm) {
    data::DatasetDef def;
    def.seed = 21;
    def.images = 64;
    def.classes = 4;
    def.image = data::ImageDef{3, 8, 8};
    data::SyntheticImageGenerator gen(def);

    data::DimdConfig cfg;
    cfg.groups = 1;
    cfg.replication = 2;
    data::DimdStore store(comm, cfg);
    store.load_partition(gen);
    EXPECT_EQ(store.owned_shards(), std::vector<int>{comm.rank()});
    const std::uint64_t checksum = store.group_checksum();
    const std::uint64_t count = store.group_count();

    // Rank 2 "dies": the survivors split off and repartition from
    // replicas.
    auto sub = comm.split(comm.rank() == 2 ? 1 : 0, comm.rank());
    if (comm.rank() == 2) return;
    const std::vector<int> dead{2};
    data::DimdStore rebuilt(sub, store.take_salvage(),
                            std::span<const int>(dead));
    // Shard 2's holders are {2, 1}; with 2 dead, rank 1 inherits it.
    if (comm.rank() == 1) {
      EXPECT_EQ(rebuilt.owned_shards(), (std::vector<int>{1, 2}));
    } else {
      EXPECT_EQ(rebuilt.owned_shards(), std::vector<int>{comm.rank()});
    }
    EXPECT_EQ(rebuilt.dead_origin_ranks(), dead);
    // The group still owns exactly the original dataset.
    EXPECT_EQ(rebuilt.group_count(), count);
    EXPECT_EQ(rebuilt.group_checksum(), checksum);
  });
}

// ---- checkpoint manifest world shape ---------------------------------

TEST(CheckpointManifest, RecordsWorldShapeAndOriginMap) {
  const std::string dir = testing::TempDir() + "dct_manifest_shape";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const std::vector<int> origins{0, 1, 3, 2};
  trainer::write_manifest(dir, 12, 4, std::span<const int>(origins));
  auto info = trainer::read_manifest_info(dir);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->iteration, 12u);
  EXPECT_EQ(info->nranks, 4);
  EXPECT_EQ(info->origin_ranks, origins);

  // Without an origin map the manifest stays in the legacy one-line
  // format and reads back with no origins.
  trainer::write_manifest(dir, 13, 4);
  info = trainer::read_manifest_info(dir);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->iteration, 13u);
  EXPECT_TRUE(info->origin_ranks.empty());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManifest, OriginsCountMismatchIsAWorldShapeError) {
  const std::string dir = testing::TempDir() + "dct_manifest_badshape";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream os(dir + "/MANIFEST");
    os << "12 4\norigins 0 1\n";  // 2 origins for a 4-rank world
  }
  try {
    trainer::read_manifest_info(dir);
    FAIL() << "short origins line must not parse";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("world-shape disagreement"),
              std::string::npos)
        << e.what();
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckpointManifest, ResumeIntoDifferentWorldSizeNamesTheMismatch) {
  // A checkpoint taken at one world size, resumed at another, must fail
  // naming both sizes — not surface as a missing rank file or a CRC
  // mismatch three calls later.
  const std::string dir = testing::TempDir() + "dct_manifest_resume_shape";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  trainer::write_manifest(dir, 8, 4);  // 4-rank provenance, no rank files

  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 2;
  cfg.dataset.seed = 11;
  cfg.dataset.images = 128;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.seed = 5;
  cfg.dimd.replication = 2;
  cfg.checkpoint_dir = dir;
  simmpi::Runtime rt(3);
  try {
    rt.run([&](simmpi::Communicator& comm) {
      trainer::DistributedTrainer tr(comm, cfg);
      tr.resume();
    });
    FAIL() << "resume must reject a 4-rank checkpoint in a 3-rank world";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("world-shape disagreement"), std::string::npos)
        << what;
    EXPECT_NE(what.find("4 ranks"), std::string::npos) << what;
    EXPECT_NE(what.find('3'), std::string::npos) << what;
  }
  std::filesystem::remove_all(dir);
}

// ---- the elastic driver ----------------------------------------------

trainer::TrainerConfig small_trainer_config() {
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 2;
  cfg.dataset.seed = 11;
  cfg.dataset.images = 128;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.base_lr = 0.02;
  cfg.seed = 5;
  return cfg;
}

/// Params of every rank file of checkpoint `iter`; fails the test if a
/// file is missing or damaged.
std::vector<std::vector<float>> checkpoint_params(const std::string& dir,
                                                  std::uint64_t iter,
                                                  int nranks) {
  std::vector<std::vector<float>> out;
  for (int r = 0; r < nranks; ++r) {
    out.push_back(
        trainer::read_trainer_state(trainer::rank_checkpoint_path(dir, iter, r))
            .params);
  }
  return out;
}

/// Clone checkpoint `iter`'s rank files into `dst` with a manifest
/// naming `origins`, so a fresh world can resume exactly the post-grow
/// state an elastic run checkpointed mid-flight.
void clone_checkpoint(const std::string& src, const std::string& dst,
                      std::uint64_t iter, int nranks,
                      std::span<const int> origins) {
  std::filesystem::create_directories(dst);
  for (int r = 0; r < nranks; ++r) {
    std::filesystem::copy_file(
        trainer::rank_checkpoint_path(src, iter, r),
        trainer::rank_checkpoint_path(dst, iter, r),
        std::filesystem::copy_options::overwrite_existing);
  }
  trainer::write_manifest(dst, iter, nranks, origins);
}

TEST(Elastic, NonRootCrashShrinksAndFinishesWithoutRollback) {
  const std::string dir = testing::TempDir() + "dct_elastic_shrink_ckpt";
  std::filesystem::remove_all(dir);

  trainer::ElasticConfig ecfg;
  ecfg.trainer = small_trainer_config();
  ecfg.trainer.dimd.replication = 2;
  ecfg.trainer.checkpoint_dir = dir;
  ecfg.trainer.checkpoint_every = 4;
  ecfg.ranks = 8;
  ecfg.total_iterations = 12;
  ecfg.min_ranks = 2;
  ecfg.recv_deadline = milliseconds(3000);
  ecfg.join_deadline = milliseconds(12000);

  const std::uint64_t shrinks_before =
      obs::Metrics::counter("recovery.shrinks").value();
  FaultPlan plan(31);
  plan.add({.kind = FaultKind::kCrash, .rank = 3, .at_step = 6});
  const auto start = steady_clock::now();
  const auto res = trainer::run_elastic(ecfg, &plan);

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.shrinks, 1u);
  EXPECT_EQ(res.rollbacks, 0u);  // survivors never tore the world down
  EXPECT_EQ(res.lost_steps, 0u);
  EXPECT_EQ(res.final_ranks, 7);
  EXPECT_GT(res.faults_injected, 0u);
  ASSERT_EQ(res.incidents.size(), 1u);
  EXPECT_EQ(res.incidents[0].kind, "shrink");
  EXPECT_EQ(res.incidents[0].world_size, 7);
  EXPECT_LT(seconds_since(start), 60.0);
  EXPECT_GE(obs::Metrics::counter("recovery.shrinks").value(),
            shrinks_before + 1);

  // The final checkpoint was taken by the 7 survivors...
  const auto manifest = trainer::read_manifest_any(dir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->first, ecfg.total_iterations);
  EXPECT_EQ(manifest->second, 7);
  // ...and every survivor holds bit-identical parameters.
  const auto params = checkpoint_params(dir, manifest->first, 7);
  ASSERT_FALSE(params[0].empty());
  for (int r = 1; r < 7; ++r) {
    EXPECT_EQ(params[static_cast<std::size_t>(r)], params[0])
        << "rank " << r << " diverged from rank 0";
  }
  ASSERT_EQ(res.final_params, params[0]);
  std::filesystem::remove_all(dir);
}

TEST(Elastic, CrashWithHotSpareHealsBackToFullWorld) {
  // The headline self-healing path: 8 trainer ranks, one hot spare, one
  // injected crash. The driver shrinks to 7, promotes the spare, and
  // the run finishes at full strength with zero rollbacks. Post-grow
  // training must be bit-identical to a fresh 8-rank world resuming the
  // post-grow checkpoint.
  const std::string dir = testing::TempDir() + "dct_elastic_grow_ckpt";
  const std::string ref_dir = testing::TempDir() + "dct_elastic_grow_ref";
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(ref_dir);

  trainer::ElasticConfig ecfg;
  ecfg.trainer = small_trainer_config();
  ecfg.trainer.dimd.replication = 2;
  ecfg.trainer.checkpoint_dir = dir;
  ecfg.trainer.checkpoint_every = 4;
  ecfg.ranks = 8;
  ecfg.spares = 1;
  ecfg.total_iterations = 16;
  ecfg.min_ranks = 2;
  ecfg.recv_deadline = milliseconds(3000);
  ecfg.join_deadline = milliseconds(12000);

  const std::uint64_t grows_before =
      obs::Metrics::counter("recovery.grows").value();
  FaultPlan plan(37);
  plan.add({.kind = FaultKind::kCrash, .rank = 3, .at_step = 6});
  const auto start = steady_clock::now();
  const auto res = trainer::run_elastic(ecfg, &plan);

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.shrinks, 1u);
  EXPECT_EQ(res.grows, 1u);
  EXPECT_EQ(res.rollbacks, 0u);
  EXPECT_EQ(res.lost_steps, 0u);
  EXPECT_EQ(res.final_ranks, 8);  // healed back to full strength
  EXPECT_GT(res.faults_injected, 0u);
  ASSERT_EQ(res.incidents.size(), 2u);
  EXPECT_EQ(res.incidents[0].kind, "shrink");
  EXPECT_EQ(res.incidents[0].world_size, 7);
  EXPECT_EQ(res.incidents[1].kind, "grow");
  EXPECT_EQ(res.incidents[1].world_size, 8);
  EXPECT_LT(seconds_since(start), 60.0);
  EXPECT_GE(obs::Metrics::counter("recovery.grows").value(),
            grows_before + 1);

  // Final checkpoint: full-strength world, promoted spare seated on the
  // dead rank's origin identity, every rank bit-identical.
  const auto manifest = trainer::read_manifest_info(dir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->iteration, ecfg.total_iterations);
  EXPECT_EQ(manifest->nranks, 8);
  EXPECT_EQ(manifest->origin_ranks,
            (std::vector<int>{0, 1, 2, 4, 5, 6, 7, 3}));
  const auto params = checkpoint_params(dir, ecfg.total_iterations, 8);
  ASSERT_FALSE(params[0].empty());
  for (int r = 1; r < 8; ++r) {
    EXPECT_EQ(params[static_cast<std::size_t>(r)], params[0])
        << "rank " << r << " diverged from rank 0";
  }
  ASSERT_EQ(res.final_params, params[0]);

  // Bit-identity acceptance: a fresh 8-rank world resuming the
  // post-grow checkpoint (taken at the crash step) reaches bit-identical
  // parameters at the end of the run.
  clone_checkpoint(dir, ref_dir, /*iter=*/6, /*nranks=*/8,
                   std::span<const int>(manifest->origin_ranks));
  std::vector<float> ref_params;
  {
    auto tcfg = ecfg.trainer;
    tcfg.checkpoint_dir = ref_dir;
    simmpi::Runtime rt(8);
    rt.run([&](simmpi::Communicator& comm) {
      trainer::DistributedTrainer tr(comm, tcfg);
      ASSERT_TRUE(tr.resume());
      EXPECT_EQ(tr.iteration(), 6u);
      while (tr.iteration() < ecfg.total_iterations) tr.step();
      if (comm.rank() == 0) ref_params = tr.snapshot_params();
    });
  }
  ASSERT_EQ(ref_params, res.final_params)
      << "post-grow training diverged from a fresh same-size world";
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(ref_dir);
}

TEST(Elastic, RepeatedShrinkGrowShrinkCycle) {
  // Repeated elasticity on one run: crash → shrink → grow (spare), then
  // a second crash with the pool empty → shrink only. The mid-run
  // full-strength checkpoint must be bit-identical to a fresh 8-rank
  // world resuming the post-grow state, and the final 7-rank world must
  // agree across ranks.
  const std::string dir = testing::TempDir() + "dct_elastic_cycle_ckpt";
  const std::string ref_dir = testing::TempDir() + "dct_elastic_cycle_ref";
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(ref_dir);

  trainer::ElasticConfig ecfg;
  ecfg.trainer = small_trainer_config();
  ecfg.trainer.dimd.replication = 2;
  ecfg.trainer.checkpoint_dir = dir;
  ecfg.trainer.checkpoint_every = 4;
  ecfg.ranks = 8;
  ecfg.spares = 1;
  ecfg.total_iterations = 12;
  ecfg.min_ranks = 2;
  ecfg.recv_deadline = milliseconds(3000);
  ecfg.join_deadline = milliseconds(12000);

  FaultPlan plan(43);
  plan.add({.kind = FaultKind::kCrash, .rank = 3, .at_step = 5});
  plan.add({.kind = FaultKind::kCrash, .rank = 6, .at_step = 9});
  const auto start = steady_clock::now();
  const auto res = trainer::run_elastic(ecfg, &plan);

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.shrinks, 2u);
  EXPECT_EQ(res.grows, 1u);
  EXPECT_EQ(res.rollbacks, 0u);
  EXPECT_EQ(res.final_ranks, 7);  // second crash found the pool empty
  ASSERT_EQ(res.incidents.size(), 3u);
  EXPECT_EQ(res.incidents[0].kind, "shrink");
  EXPECT_EQ(res.incidents[0].world_size, 7);
  EXPECT_EQ(res.incidents[1].kind, "grow");
  EXPECT_EQ(res.incidents[1].world_size, 8);
  EXPECT_EQ(res.incidents[2].kind, "shrink");
  EXPECT_EQ(res.incidents[2].world_size, 7);
  EXPECT_LT(seconds_since(start), 90.0);

  // Final checkpoint: 7 survivors, bit-identical parameters.
  const auto manifest = trainer::read_manifest_info(dir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->iteration, ecfg.total_iterations);
  EXPECT_EQ(manifest->nranks, 7);
  const auto final_params =
      checkpoint_params(dir, ecfg.total_iterations, 7);
  ASSERT_FALSE(final_params[0].empty());
  for (int r = 1; r < 7; ++r) {
    EXPECT_EQ(final_params[static_cast<std::size_t>(r)], final_params[0])
        << "rank " << r << " diverged from rank 0";
  }

  // Bit-identity of the full-strength segment: resume the post-grow
  // checkpoint (crash step 5) in a fresh 8-rank world, run to the next
  // periodic checkpoint, and compare it against the elastic run's.
  const std::vector<int> grow_origins{0, 1, 2, 4, 5, 6, 7, 3};
  clone_checkpoint(dir, ref_dir, /*iter=*/5, /*nranks=*/8,
                   std::span<const int>(grow_origins));
  {
    auto tcfg = ecfg.trainer;
    tcfg.checkpoint_dir = ref_dir;
    simmpi::Runtime rt(8);
    rt.run([&](simmpi::Communicator& comm) {
      trainer::DistributedTrainer tr(comm, tcfg);
      ASSERT_TRUE(tr.resume());
      EXPECT_EQ(tr.iteration(), 5u);
      while (tr.iteration() < 8) tr.step();  // periodic save at 8
    });
  }
  const auto elastic_ckpt8 = checkpoint_params(dir, 8, 8);
  const auto ref_ckpt8 = checkpoint_params(ref_dir, 8, 8);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(elastic_ckpt8[static_cast<std::size_t>(r)],
              ref_ckpt8[static_cast<std::size_t>(r)])
        << "post-grow rank " << r << " diverged from the fresh world";
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(ref_dir);
}

TEST(Elastic, WithoutReplicationDegradesToExactlyOneRollback) {
  const std::string dir = testing::TempDir() + "dct_elastic_rollback_ckpt";
  std::filesystem::remove_all(dir);

  trainer::ElasticConfig ecfg;
  ecfg.trainer = small_trainer_config();
  ecfg.trainer.dimd.replication = 1;  // no replicas: shrink infeasible
  ecfg.trainer.checkpoint_dir = dir;
  ecfg.trainer.checkpoint_every = 4;
  ecfg.ranks = 4;
  ecfg.total_iterations = 10;
  ecfg.recv_deadline = milliseconds(3000);
  ecfg.join_deadline = milliseconds(12000);

  FaultPlan plan(32);
  plan.add({.kind = FaultKind::kCrash, .rank = 1, .at_step = 6});
  const auto start = steady_clock::now();
  const auto res = trainer::run_elastic(ecfg, &plan);

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.shrinks, 0u);
  EXPECT_EQ(res.rollbacks, 1u);
  EXPECT_EQ(res.final_ranks, 4);  // rollback restarts the full world
  // Rollback can only lose work since the last checkpoint.
  EXPECT_LE(res.lost_steps,
            static_cast<std::uint64_t>(ecfg.trainer.checkpoint_every));
  EXPECT_LT(seconds_since(start), 60.0);  // bounded, never a hang
  ASSERT_EQ(res.incidents.size(), 1u);
  EXPECT_EQ(res.incidents[0].kind, "rollback");
  std::filesystem::remove_all(dir);
}

TEST(Elastic, RootCrashFallsBackToRollback) {
  // Rank 0 coordinates the shrink, so losing it forces the checkpoint
  // path even with replicas to spare.
  const std::string dir = testing::TempDir() + "dct_elastic_root_ckpt";
  std::filesystem::remove_all(dir);

  trainer::ElasticConfig ecfg;
  ecfg.trainer = small_trainer_config();
  ecfg.trainer.dimd.replication = 2;
  ecfg.trainer.checkpoint_dir = dir;
  ecfg.trainer.checkpoint_every = 3;
  ecfg.ranks = 4;
  ecfg.total_iterations = 8;
  ecfg.recv_deadline = milliseconds(2000);
  ecfg.join_deadline = milliseconds(6000);

  FaultPlan plan(33);
  plan.add({.kind = FaultKind::kCrash, .rank = 0, .at_step = 5});
  const auto start = steady_clock::now();
  const auto res = trainer::run_elastic(ecfg, &plan);

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.shrinks, 0u);
  EXPECT_EQ(res.rollbacks, 1u);
  EXPECT_LT(seconds_since(start), 90.0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dct
