// Tests for the trainer module: Algorithm-1 functional correctness
// (distributed == serial, optimization-invariance of the training
// trajectory), real end-to-end learning through the full stack, the
// epoch-time model's reproduction of the paper's headline bands, and
// the accuracy curves.
#include <gtest/gtest.h>

#include <cmath>

#include "simmpi/runtime.hpp"
#include "trainer/accuracy_model.hpp"
#include "trainer/distributed_trainer.hpp"
#include "trainer/epoch_model.hpp"

namespace dct::trainer {
namespace {

TrainerConfig small_config() {
  TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 2;
  cfg.dataset.seed = 11;
  cfg.dataset.images = 64;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.base_lr = 0.02;
  cfg.seed = 5;
  return cfg;
}

TEST(Trainer, DistributedMatchesSerial) {
  // 2 learners × 2 GPUs == 1 learner × 4 GPUs at the same per-GPU batch:
  // the per-GPU sub-batches (and hence the batch-norm statistics) are
  // identical, so with deterministic global sampling the parameter
  // trajectories must agree up to float summation order. (Configurations
  // with *different* per-GPU batches are NOT equivalent — batch norm is
  // per-replica — which is also true of the paper's Torch setup.)
  auto cfg = small_config();
  cfg.deterministic_global_sampling = true;
  cfg.batch_per_gpu = 4;

  std::vector<float> serial_params;
  {
    auto serial = cfg;
    serial.gpus_per_node = 4;
    serial.dimd.groups = 1;
    simmpi::Runtime::execute(1, [&](simmpi::Communicator& comm) {
      DistributedTrainer trainer(comm, serial);
      EXPECT_EQ(trainer.global_batch(), 16);
      for (int i = 0; i < 4; ++i) trainer.step();
      serial_params = trainer.snapshot_params();
    });
  }

  std::vector<float> dist_params;
  {
    auto dist = cfg;
    dist.gpus_per_node = 2;
    dist.dimd.groups = 2;  // every learner holds the full dataset
    simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
      DistributedTrainer trainer(comm, dist);
      EXPECT_EQ(trainer.global_batch(), 16);
      for (int i = 0; i < 4; ++i) trainer.step();
      if (comm.rank() == 0) dist_params = trainer.snapshot_params();
    });
  }

  ASSERT_EQ(serial_params.size(), dist_params.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < serial_params.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(serial_params[i]) -
                                 dist_params[i]));
  }
  EXPECT_LT(max_diff, 5e-4);
}

TEST(Trainer, AllRanksHoldIdenticalModels) {
  auto cfg = small_config();
  simmpi::Runtime::execute(3, [&](simmpi::Communicator& comm) {
    DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < 3; ++i) trainer.step();
    const auto mine = trainer.snapshot_params();
    auto reference = mine;
    comm.bcast(std::span<float>(reference), 0);
    EXPECT_EQ(mine, reference);
  });
}

TEST(Trainer, OptimizationChoicesDoNotChangeTrajectory) {
  // The paper's §5.4 claim: none of the optimizations affect accuracy.
  // Same seeds, same sampling → switching DPT design and allreduce
  // algorithm leaves parameters (nearly bit-) identical.
  auto cfg = small_config();
  cfg.deterministic_global_sampling = true;
  cfg.dimd.groups = 2;

  auto run_with = [&](bool optimized_dpt, const std::string& algo) {
    auto c = cfg;
    c.optimized_dpt = optimized_dpt;
    c.allreduce = algo;
    std::vector<float> params;
    simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
      DistributedTrainer trainer(comm, c);
      for (int i = 0; i < 3; ++i) trainer.step();
      if (comm.rank() == 0) params = trainer.snapshot_params();
    });
    return params;
  };

  const auto reference = run_with(true, "multicolor");
  for (const auto& [dpt, algo] :
       std::vector<std::pair<bool, std::string>>{
           {false, "multicolor"}, {true, "ring"}, {true, "openmpi_default"},
           {false, "naive"}}) {
    const auto params = run_with(dpt, algo);
    ASSERT_EQ(params.size(), reference.size());
    double max_diff = 0.0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      max_diff = std::max(max_diff,
                          std::abs(static_cast<double>(params[i]) -
                                   reference[i]));
    }
    EXPECT_LT(max_diff, 2e-5) << "dpt=" << dpt << " algo=" << algo;
  }
}

TEST(Trainer, LearnsSyntheticClassesEndToEnd) {
  // Full stack — DIMD + multicolor + optimized DPT — learns the
  // synthetic class structure well above chance.
  auto cfg = small_config();
  cfg.dataset.images = 128;
  cfg.batch_per_gpu = 8;
  cfg.base_lr = 0.05;
  cfg.shuffle_every = 10;
  double val = 0.0;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    DistributedTrainer trainer(comm, cfg);
    EpochMetrics last;
    for (int epoch = 0; epoch < 6; ++epoch) {
      last = trainer.train_epoch(8);
    }
    EXPECT_GT(last.shuffles, 0u);  // the periodic shuffle really ran
    if (comm.rank() == 0) val = trainer.evaluate(64);
  });
  EXPECT_GT(val, 0.5);  // chance = 0.25
}

TEST(Trainer, DonkeyModeTrainsFromRecordFile) {
  const std::string blob = testing::TempDir() + "dct_trainer_blob.bin";
  const std::string index = testing::TempDir() + "dct_trainer_index.bin";
  auto cfg = small_config();
  data::build_synthetic_record_file(cfg.dataset, blob, index);
  cfg.record_blob_path = blob;
  cfg.record_index_path = index;
  float first = 0.0f, last = 0.0f;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < 10; ++i) {
      const auto m = trainer.step();
      if (i == 0) first = m.loss;
      last = m.loss;
    }
  });
  EXPECT_LT(last, first);
  std::remove(blob.c_str());
  std::remove(index.c_str());
}

// ----------------------------------------------------------- epoch model

TEST(EpochModel, OptimizedColumnMatchesTable1) {
  // Paper Table 1, fully-optimized epoch seconds:
  //   GoogleNetBN: 155 / 76 / 41     ResNet-50: 224 / 109 / 58
  const double paper[2][3] = {{155, 76, 41}, {224, 109, 58}};
  const char* models[2] = {"googlenetbn", "resnet50"};
  const int nodes[3] = {8, 16, 32};
  for (int m = 0; m < 2; ++m) {
    for (int n = 0; n < 3; ++n) {
      EpochModelConfig cfg;
      cfg.model = models[m];
      cfg.nodes = nodes[n];
      const double ours = epoch_seconds(with_all_optimizations(cfg));
      EXPECT_GT(ours, paper[m][n] * 0.80) << models[m] << " " << nodes[n];
      EXPECT_LT(ours, paper[m][n] * 1.20) << models[m] << " " << nodes[n];
    }
  }
}

TEST(EpochModel, BaselineMuchSlowerAndSpeedupInPaperBand) {
  // Table 1's overall speedups span 58–130 %; our model lands in a
  // broadly consistent band (50–260 %) for every row. (The baseline
  // column overshoots for GoogleNetBN — see EXPERIMENTS.md: a single
  // shared I/O-rate model makes the lighter-compute model relatively
  // more I/O-bound than the paper observed.)
  for (const char* model : {"googlenetbn", "resnet50"}) {
    for (int nodes : {8, 16, 32}) {
      EpochModelConfig cfg;
      cfg.model = model;
      cfg.nodes = nodes;
      const double base = epoch_seconds(with_open_source_baseline(cfg));
      const double opt = epoch_seconds(with_all_optimizations(cfg));
      const double speedup = base / opt - 1.0;
      EXPECT_GT(speedup, 0.50) << model << " " << nodes;
      EXPECT_LT(speedup, 2.60) << model << " " << nodes;
    }
  }
}

TEST(EpochModel, MulticolorEpochSavingMatchesFig6Band) {
  // Fig. 6: the multicolor algorithm's epoch time is 50–60 % below the
  // default OpenMPI epoch time (GoogleNetBN, other optimizations held).
  for (int nodes : {8, 16, 32}) {
    EpochModelConfig cfg;
    cfg.model = "googlenetbn";
    cfg.nodes = nodes;
    cfg = with_all_optimizations(cfg);
    const double t_mc = epoch_seconds(cfg);
    cfg.allreduce = "openmpi_default";
    const double t_def = epoch_seconds(cfg);
    const double saving = 1.0 - t_mc / t_def;
    EXPECT_GT(saving, 0.30) << nodes;
    EXPECT_LT(saving, 0.65) << nodes;
    // Ring lands in between.
    cfg.allreduce = "ring";
    const double t_ring = epoch_seconds(cfg);
    EXPECT_GT(t_ring, t_mc);
    EXPECT_LT(t_ring, t_def);
  }
}

TEST(EpochModel, DimdImprovesEpochTime) {
  // Fig. 10 direction: disabling DIMD slows both models; the gain grows
  // with node count (fixed array bandwidth, more clients).
  for (const char* model : {"googlenetbn", "resnet50"}) {
    double prev_gain = 0.0;
    for (int nodes : {8, 16, 32}) {
      EpochModelConfig cfg;
      cfg.model = model;
      cfg.nodes = nodes;
      cfg = with_all_optimizations(cfg);
      const double with_dimd = epoch_seconds(cfg);
      cfg.dimd = false;
      const double without = epoch_seconds(cfg);
      const double gain = without / with_dimd - 1.0;
      EXPECT_GT(gain, 0.10) << model << " " << nodes;
      EXPECT_GE(gain, prev_gain * 0.9) << model << " " << nodes;
      prev_gain = gain;
    }
  }
}

TEST(EpochModel, DptOptimizationWorthAFewPercent) {
  // Fig. 12: +15 % (GoogleNetBN) / +18 % (ResNet-50) epoch improvement.
  for (const char* model : {"googlenetbn", "resnet50"}) {
    EpochModelConfig cfg;
    cfg.model = model;
    cfg.nodes = 16;
    cfg = with_all_optimizations(cfg);
    const double opt = epoch_seconds(cfg);
    cfg.optimized_dpt = false;
    const double base = epoch_seconds(cfg);
    const double gain = base / opt - 1.0;
    EXPECT_GT(gain, 0.05) << model;
    EXPECT_LT(gain, 0.35) << model;
  }
}

TEST(EpochModel, ScalesWithNodes) {
  EpochModelConfig cfg;
  cfg = with_all_optimizations(cfg);
  cfg.nodes = 8;
  const double t8 = epoch_seconds(cfg);
  cfg.nodes = 32;
  const double t32 = epoch_seconds(cfg);
  // Near-linear strong scaling (the paper reports 90 %+ efficiency).
  EXPECT_LT(t32, t8 / 3.0);
  EXPECT_GT(t32, t8 / 4.2);
}

// --------------------------------------------------------- accuracy model

TEST(Accuracy, TerminalValuesMatchTable1) {
  // 8 nodes → effective batch 2048.
  AccuracyCurveConfig cfg;
  cfg.model = "resnet50";
  cfg.effective_batch = 2048;
  EXPECT_NEAR(AccuracyCurve(cfg).final_top1(), 0.7599, 1e-4);
  cfg.effective_batch = 4096;
  EXPECT_NEAR(AccuracyCurve(cfg).final_top1(), 0.7578, 1e-3);
  cfg.effective_batch = 8192;
  EXPECT_NEAR(AccuracyCurve(cfg).final_top1(), 0.7557, 1e-3);
  cfg.model = "googlenetbn";
  cfg.effective_batch = 2048;
  EXPECT_NEAR(AccuracyCurve(cfg).final_top1(), 0.7486, 1e-4);
}

TEST(Accuracy, CurveIsMonotoneWithLrDropJumps) {
  AccuracyCurveConfig cfg;
  AccuracyCurve curve(cfg);
  double prev = -1.0;
  for (double e = 0.0; e <= 90.0; e += 0.5) {
    const double a = curve.top1(e);
    EXPECT_GE(a, prev - 1e-9) << "epoch " << e;
    EXPECT_LE(a, curve.final_top1() + 1e-9);
    prev = a;
  }
  // The LR drop at epoch 30 produces the familiar jump.
  EXPECT_GT(curve.top1(33.0) - curve.top1(29.9), 0.02);
}

TEST(Accuracy, TrainErrorDecreasesFromLn1000) {
  AccuracyCurveConfig cfg;
  AccuracyCurve curve(cfg);
  EXPECT_NEAR(curve.train_error(0.0), std::log(1000.0), 0.3);
  double prev = 1e9;
  for (double e = 0.0; e <= 90.0; e += 1.0) {
    const double err = curve.train_error(e);
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
  EXPECT_LT(curve.train_error(90.0), 1.0);
}

TEST(Accuracy, UnknownModelThrows) {
  AccuracyCurveConfig cfg;
  cfg.model = "alexnet";
  EXPECT_THROW(AccuracyCurve{cfg}, CheckError);
}

}  // namespace
}  // namespace dct::trainer
