// Chaos soak (DESIGN.md §11, §14): one bounded end-to-end run that
// layers every hostile feature at once — bucketed backward/allreduce
// overlap, lossy fp16 gradient compression, persistent stragglers, two
// non-adjacent fail-stop crashes, and a single hot spare — through the
// elastic driver. The first crash heals by growing the spare back in
// (shrink → grow); the second finds the pool empty and recovers
// shrink-only. The run must finish on the seven survivors with zero
// rollbacks, in bounded wall time, with every survivor holding
// bit-identical parameters.
//
// Registered under `ctest -L chaos`; budgeted well under 60 seconds.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "obs/counters.hpp"
#include "simmpi/fault.hpp"
#include "trainer/checkpoint_io.hpp"
#include "trainer/elastic.hpp"

namespace dct {
namespace {

using simmpi::FaultKind;
using simmpi::FaultPlan;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(ChaosSoak, OverlapFp16CrashesStragglersAndSpareHealOneShrinkOneGrow) {
  const std::string dir = testing::TempDir() + "dct_chaos_soak_ckpt";
  std::filesystem::remove_all(dir);

  trainer::ElasticConfig ecfg;
  ecfg.trainer.model.classes = 4;
  ecfg.trainer.model.image = 8;
  ecfg.trainer.gpus_per_node = 2;
  ecfg.trainer.batch_per_gpu = 2;
  ecfg.trainer.dataset.seed = 29;
  ecfg.trainer.dataset.images = 128;
  ecfg.trainer.dataset.classes = 4;
  ecfg.trainer.dataset.image = data::ImageDef{3, 8, 8};
  ecfg.trainer.base_lr = 0.02;
  ecfg.trainer.seed = 7;
  // The full gradient pipeline: small buckets, background overlap
  // thread, lossy fp16 wire format.
  ecfg.trainer.comm.bucket_bytes = 4096;
  ecfg.trainer.comm.overlap = true;
  ecfg.trainer.comm.codec = "fp16";
  ecfg.trainer.dimd.replication = 2;
  ecfg.trainer.checkpoint_dir = dir;
  ecfg.trainer.checkpoint_every = 4;
  ecfg.ranks = 8;
  ecfg.spares = 1;  // enough to heal the first crash, not the second
  ecfg.total_iterations = 14;
  ecfg.min_ranks = 2;
  ecfg.recv_deadline = milliseconds(3000);
  ecfg.join_deadline = milliseconds(12000);

  FaultPlan plan(41);
  // Two fail-stops on non-adjacent ranks, so with replication 2 every
  // shard keeps a live holder (holders of shard s are {s, s-1}). The
  // hot spare heals the first crash back to 8 ranks; by the second
  // crash the pool is empty, so the world shrinks to 7 and stays there.
  plan.add({.kind = FaultKind::kCrash, .rank = 3, .at_step = 5});
  plan.add({.kind = FaultKind::kCrash, .rank = 6, .at_step = 9});
  // A persistent straggler that survives both recoveries.
  plan.add({.kind = FaultKind::kStraggle, .rank = 2, .probability = 0.2,
            .delay_ms = 1.0});

  const auto start = steady_clock::now();
  const auto res = trainer::run_elastic(ecfg, &plan);
  const double elapsed =
      std::chrono::duration<double>(steady_clock::now() - start).count();

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.shrinks, 2u);
  EXPECT_EQ(res.grows, 1u);  // exactly one spare promotion
  EXPECT_EQ(res.rollbacks, 0u);
  EXPECT_EQ(res.final_ranks, 7);
  EXPECT_GE(res.faults_injected, 2u);
  EXPECT_LT(elapsed, 60.0) << "chaos soak must stay bounded";

  // Every survivor's final checkpoint holds bit-identical parameters —
  // overlap + compression + shrink/grow cycles must not let replicas
  // diverge.
  const auto manifest = trainer::read_manifest_any(dir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->first, ecfg.total_iterations);
  EXPECT_EQ(manifest->second, 7);
  std::vector<float> rank0 =
      trainer::read_trainer_state(
          trainer::rank_checkpoint_path(dir, manifest->first, 0))
          .params;
  ASSERT_FALSE(rank0.empty());
  for (int r = 1; r < 7; ++r) {
    const auto params =
        trainer::read_trainer_state(
            trainer::rank_checkpoint_path(dir, manifest->first, r))
            .params;
    EXPECT_EQ(params, rank0) << "rank " << r << " diverged";
  }
  std::filesystem::remove_all(dir);
}

TEST(ChaosSoak, CorruptionOnTopOfCrashesHealsWithoutLosingAChunk) {
  // The SDC arm (DESIGN.md §16): everything the soak above throws at
  // the driver, plus a surviving rank that corrupts 10% of its sends
  // for the whole run. With integrity envelopes on, every corrupted
  // chunk is caught and retransmitted — the run finishes exactly like
  // the clean soak (two shrinks, one grow, zero rollbacks, survivors
  // bit-identical) and not one message is lost past the retry budget.
  const std::string dir = testing::TempDir() + "dct_chaos_corrupt_ckpt";
  std::filesystem::remove_all(dir);

  trainer::ElasticConfig ecfg;
  ecfg.trainer.model.classes = 4;
  ecfg.trainer.model.image = 8;
  ecfg.trainer.gpus_per_node = 2;
  ecfg.trainer.batch_per_gpu = 2;
  ecfg.trainer.dataset.seed = 29;
  ecfg.trainer.dataset.images = 128;
  ecfg.trainer.dataset.classes = 4;
  ecfg.trainer.dataset.image = data::ImageDef{3, 8, 8};
  ecfg.trainer.base_lr = 0.02;
  ecfg.trainer.seed = 7;
  ecfg.trainer.comm.bucket_bytes = 4096;
  ecfg.trainer.comm.overlap = true;
  ecfg.trainer.comm.codec = "fp16";
  ecfg.trainer.dimd.replication = 2;
  ecfg.trainer.checkpoint_dir = dir;
  ecfg.trainer.checkpoint_every = 4;
  ecfg.ranks = 8;
  ecfg.spares = 1;
  ecfg.total_iterations = 14;
  ecfg.min_ranks = 2;
  ecfg.recv_deadline = milliseconds(3000);
  ecfg.join_deadline = milliseconds(12000);
  ecfg.integrity = true;
  ecfg.integrity_retries = 16;  // 10% corruption must never exhaust it

  const std::uint64_t retransmits_before =
      obs::Metrics::counter("integrity.retransmits").value();
  const std::uint64_t lost_before =
      obs::Metrics::counter("integrity.lost").value();

  FaultPlan plan(43);
  plan.add({.kind = FaultKind::kCrash, .rank = 3, .at_step = 5});
  plan.add({.kind = FaultKind::kCrash, .rank = 6, .at_step = 9});
  plan.add({.kind = FaultKind::kStraggle, .rank = 2, .probability = 0.2,
            .delay_ms = 1.0});
  // Rank 1 survives both crashes and corrupts for the whole run.
  plan.add({.kind = FaultKind::kCorrupt, .rank = 1, .probability = 0.1});

  const auto start = steady_clock::now();
  const auto res = trainer::run_elastic(ecfg, &plan);
  const double elapsed =
      std::chrono::duration<double>(steady_clock::now() - start).count();

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.shrinks, 2u);
  EXPECT_EQ(res.grows, 1u);
  EXPECT_EQ(res.rollbacks, 0u);
  EXPECT_EQ(res.quarantines, 0u);  // health guard off: envelope only
  EXPECT_EQ(res.final_ranks, 7);
  EXPECT_LT(elapsed, 60.0) << "chaos soak must stay bounded";

  // The envelope did real work, and nothing slipped past it.
  EXPECT_GT(obs::Metrics::counter("integrity.retransmits").value(),
            retransmits_before);
  EXPECT_EQ(obs::Metrics::counter("integrity.lost").value(), lost_before);

  const auto manifest = trainer::read_manifest_any(dir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->first, ecfg.total_iterations);
  EXPECT_EQ(manifest->second, 7);
  std::vector<float> rank0 =
      trainer::read_trainer_state(
          trainer::rank_checkpoint_path(dir, manifest->first, 0))
          .params;
  ASSERT_FALSE(rank0.empty());
  for (int r = 1; r < 7; ++r) {
    const auto params =
        trainer::read_trainer_state(
            trainer::rank_checkpoint_path(dir, manifest->first, r))
            .params;
    EXPECT_EQ(params, rank0) << "rank " << r << " diverged";
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dct
