// Unit tests for the util module: RNG determinism and distribution sanity,
// streaming statistics, table formatting, unit helpers, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace dct {
namespace {

TEST(Crc32, MatchesKnownAnswerVector) {
  // The IEEE 802.3 check value: CRC-32 of the ASCII digits "123456789".
  // Locks the polynomial and the sliced update loop to the standard —
  // every sealed checkpoint and message envelope depends on it.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, IncrementalUpdateMatchesOneShotAtEverySplit) {
  // The slice-by-8 fast path folds 8 bytes at a time; splitting the
  // buffer at every offset exercises every head/tail remainder
  // combination against the one-shot answer.
  std::vector<unsigned char> buf(67);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 37 + 11);
  }
  const std::uint32_t whole = crc32(buf.data(), buf.size());
  for (std::size_t split = 0; split <= buf.size(); ++split) {
    std::uint32_t crc = crc32_init();
    crc = crc32_update(crc, buf.data(), split);
    crc = crc32_update(crc, buf.data() + split, buf.size() - split);
    EXPECT_EQ(crc32_final(crc), whole) << "split at " << split;
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<std::size_t> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(8)];
  // chi-squared with 7 dof; 99.9th percentile ≈ 24.3.
  EXPECT_LT(chi_squared_uniform(counts), 24.3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStat st;
  for (int i = 0; i < 50000; ++i) st.add(rng.next_gaussian());
  EXPECT_NEAR(st.mean(), 0.0, 0.03);
  EXPECT_NEAR(st.stddev(), 1.0, 0.03);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng c1 = parent1.split();
  Rng c2 = parent2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
  // A second split differs from the first.
  Rng c3 = parent1.split();
  int same = 0;
  Rng c1b(0);
  (void)c1b;
  Rng c1r = Rng(99).split();
  for (int i = 0; i < 100; ++i) same += (c3.next_u64() == c1r.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(17);
  auto p = rng.permutation(257);
  std::vector<std::uint32_t> sorted(p);
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 257; ++i) EXPECT_EQ(sorted[i], i);
  // And not the identity (probability ~0 for n=257).
  EXPECT_NE(p, sorted);
}

TEST(RunningStat, MatchesClosedForm) {
  RunningStat st;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  for (double x : xs) st.add(x);
  EXPECT_EQ(st.count(), xs.size());
  EXPECT_DOUBLE_EQ(st.mean(), 4.5);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 8.0);
  EXPECT_NEAR(st.variance(), 6.0, 1e-12);
  EXPECT_NEAR(st.sum(), 36.0, 1e-12);
}

TEST(RunningStat, MergeEqualsSequential) {
  Rng rng(23);
  RunningStat whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian() * 3 + 1;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
  EXPECT_THROW(percentile({}, 50), CheckError);
}

TEST(Percentile, SingleElementIsEveryPercentile) {
  const std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(percentile(one, 0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(one, 50), 7.5);
  EXPECT_DOUBLE_EQ(percentile(one, 100), 7.5);
}

TEST(Percentile, EdgesOfUnsortedInput) {
  const std::vector<double> xs{30, 10, 40, 20};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_THROW(percentile({}, 0), CheckError);
  EXPECT_THROW(percentile({}, 100), CheckError);
}

TEST(Entropy, UniformIsLogN) {
  EXPECT_NEAR(entropy_bits({5, 5, 5, 5}), 2.0, 1e-12);
  EXPECT_NEAR(entropy_bits({7, 0, 0, 0}), 0.0, 1e-12);
  EXPECT_EQ(entropy_bits({0, 0}), 0.0);
}

TEST(ChiSquared, ZeroForPerfectUniform) {
  EXPECT_DOUBLE_EQ(chi_squared_uniform({4, 4, 4, 4}), 0.0);
  EXPECT_GT(chi_squared_uniform({16, 0, 0, 0}), 0.0);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(93.0 * 1024 * 1024), "93.0 MiB");
  EXPECT_EQ(format_bytes(2.5 * 1024 * 1024 * 1024), "2.5 GiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(48 * 60.0), "48.0 min");
  EXPECT_EQ(format_seconds(4.2), "4.20 s");
  EXPECT_EQ(format_seconds(0.0123), "12.30 ms");
  EXPECT_EQ(format_seconds(2 * 3600.0), "2.00 h");
}

TEST(Units, GbpsConversion) {
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_sec(100.0), 12.5e9);
}

TEST(Table, AlignsAndCounts) {
  Table t({"model", "nodes", "time"});
  t.add_row({"ResNet-50", "32", "58"});
  t.add_row({"GoogleNetBN", "8", "155"});
  const auto s = t.to_string("Table X");
  EXPECT_NE(s.find("ResNet-50"), std::string::npos);
  EXPECT_NE(s.find("Table X"), std::string::npos);
  // Header row and both data rows present.
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-two", "cells"}), CheckError);
}

TEST(Table, Csv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, RangeOverloadCoversRangeDisjointly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(
      0, 1000,
      [&](std::size_t lo, std::size_t hi) {
        ASSERT_LE(lo, hi);
        for (std::size_t i = lo; i < hi; ++i) hits[i]++;
      },
      /*grain=*/64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RangeChunksAreAFunctionOfRangeAndGrainOnly) {
  // The determinism contract: chunk boundaries depend only on (range,
  // grain), never on the worker count — so the same call made on pools
  // of different sizes produces the identical chunk decomposition.
  auto chunks_for = [](std::size_t workers) {
    ThreadPool pool(workers);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(
        0, 103,
        [&](std::size_t lo, std::size_t hi) {
          std::lock_guard<std::mutex> lock(mu);
          chunks.emplace(lo, hi);
        },
        /*grain=*/10);
    return chunks;
  };
  const auto one = chunks_for(1);
  const auto two = chunks_for(2);
  const auto eight = chunks_for(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // ceil(103 / 10) = 11 chunks, the last one short.
  EXPECT_EQ(one.size(), 11u);
  EXPECT_TRUE(one.count({100, 103}));
}

TEST(ThreadPool, RangeEmptyAndZeroGrain) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(
      7, 7, [&](std::size_t, std::size_t) { ran = true; }, /*grain=*/16);
  EXPECT_FALSE(ran);
  // grain 0 is clamped to 1 rather than dividing by zero.
  std::atomic<int> count{0};
  pool.parallel_for(
      0, 3, [&](std::size_t lo, std::size_t hi) { count += int(hi - lo); },
      /*grain=*/0);
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, SubmitFutureResolves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([&] { counter++; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace dct
