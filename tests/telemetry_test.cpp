// Telemetry-plane tests (DESIGN.md §13): frame wire format, robust
// z-score straggler detection, the rank-0 streaming aggregator, flow
// stitching + critical-path attribution on a hand-built trace, the
// trace ring cap, and the end-to-end promise — an injected straggler is
// flagged within five training steps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "comm/telemetry.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/runtime.hpp"
#include "trainer/distributed_trainer.hpp"
#include "util/error.hpp"

namespace dct {
namespace {

using obs::ClusterAggregator;
using obs::ReportEvent;
using obs::StragglerDetector;
using obs::TelemetryFrame;
using obs::Tracer;

// ---- wire format -----------------------------------------------------

TEST(TelemetryFrame, SerializeDeserializeRoundTrip) {
  TelemetryFrame f;
  f.step = 42;
  f.rank = 3;
  f.phases = {{"step", 0.125}, {"data", 0.03125}, {"allreduce", 0.0625}};
  f.values = {{"loss", 2.5}, {"comm_bytes", 4096.0}};
  const auto blob = f.serialize();
  const TelemetryFrame g = TelemetryFrame::deserialize(blob);
  EXPECT_EQ(g.step, 42);
  EXPECT_EQ(g.rank, 3);
  ASSERT_EQ(g.phases.size(), 3u);
  EXPECT_EQ(g.phases[0].first, "step");
  EXPECT_DOUBLE_EQ(g.phases[0].second, 0.125);
  EXPECT_EQ(g.phases[2].first, "allreduce");
  EXPECT_DOUBLE_EQ(g.phases[2].second, 0.0625);
  ASSERT_EQ(g.values.size(), 2u);
  EXPECT_EQ(g.values[1].first, "comm_bytes");
  EXPECT_DOUBLE_EQ(g.values[1].second, 4096.0);
}

TEST(TelemetryFrame, EmptyListsRoundTrip) {
  TelemetryFrame f;
  f.step = 0;
  f.rank = 0;
  const auto blob = f.serialize();
  const TelemetryFrame g = TelemetryFrame::deserialize(blob);
  EXPECT_TRUE(g.phases.empty());
  EXPECT_TRUE(g.values.empty());
}

TEST(TelemetryFrame, TruncatedOrCorruptBufferThrows) {
  TelemetryFrame f;
  f.step = 7;
  f.rank = 1;
  f.phases = {{"step", 1.0}};
  auto blob = f.serialize();
  for (std::size_t cut : {blob.size() - 1, blob.size() / 2, std::size_t{3}}) {
    EXPECT_THROW(TelemetryFrame::deserialize(
                     std::span<const std::byte>(blob.data(), cut)),
                 CheckError)
        << "cut at " << cut;
  }
  auto corrupt = blob;
  corrupt[0] = std::byte{0xFF};  // wrong magic
  EXPECT_THROW(TelemetryFrame::deserialize(corrupt), CheckError);
}

// ---- robust z-score --------------------------------------------------

TEST(RobustZscore, OutlierScoresHighMedianScoresZero) {
  const std::vector<double> samples = {1.0, 1.02, 0.98, 1.01, 0.99, 5.0};
  EXPECT_GT(obs::robust_zscore(5.0, samples), 3.5);
  EXPECT_NEAR(obs::robust_zscore(1.0, samples, 0.02), 0.0, 0.5);
}

TEST(RobustZscore, MadFloorTamesUniformSamples) {
  // A perfectly uniform cluster has MAD = 0; the floor keeps 1% jitter
  // from scoring as an anomaly.
  const std::vector<double> uniform(8, 1.0);
  EXPECT_LT(obs::robust_zscore(1.01, uniform, 0.02), 1.0);
  EXPECT_GT(obs::robust_zscore(2.0, uniform, 0.02), 3.5);
}

TEST(RobustZscore, MedianIsRobustToTheOutlierItself) {
  // Mean/stddev detection famously lets one huge straggler inflate its
  // own yardstick below threshold; median/MAD must not.
  std::vector<double> samples(15, 0.010);
  samples.push_back(10.0);
  EXPECT_GT(obs::robust_zscore(10.0, samples), 100.0);
}

// ---- straggler detector ----------------------------------------------

std::vector<std::pair<int, double>> world4(double r0, double r1, double r2,
                                           double r3) {
  return {{0, r0}, {1, r1}, {2, r2}, {3, r3}};
}

TEST(StragglerDetector, FlagsAfterConsecutiveDeviantSteps) {
  StragglerDetector det;  // consecutive = 2
  // Step 0: rank 3 is 5x the median — deviant, but one step is noise.
  EXPECT_TRUE(det.observe(0, "send", world4(0.010, 0.011, 0.009, 0.050))
                  .empty());
  EXPECT_FALSE(det.flagged(3));
  // Step 1: still deviant — streak reaches 2, the flag commits.
  const auto evs = det.observe(1, "send", world4(0.010, 0.010, 0.011, 0.055));
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].rank, 3);
  EXPECT_EQ(evs[0].phase, "send");
  EXPECT_EQ(evs[0].step, 1);
  EXPECT_DOUBLE_EQ(evs[0].value, 0.055);
  EXPECT_GT(evs[0].z, 3.5);
  EXPECT_TRUE(det.flagged(3));
  // Step 2: still deviant — each streak reports once, no duplicate event.
  EXPECT_TRUE(det.observe(2, "send", world4(0.010, 0.011, 0.010, 0.060))
                  .empty());
  EXPECT_EQ(det.events().size(), 1u);
  // Step 3: rank 3 recovers — the flag clears.
  EXPECT_TRUE(det.observe(3, "send", world4(0.010, 0.011, 0.010, 0.010))
                  .empty());
  EXPECT_FALSE(det.flagged(3));
}

TEST(StragglerDetector, QuietOnHealthyJitter) {
  StragglerDetector det;
  for (int s = 0; s < 50; ++s) {
    // ±10% jitter around 10 ms, different rank slowest each step.
    const double j = 0.001 * (s % 3);
    const auto evs = det.observe(s, "step",
                                 world4(0.010 + j, 0.011 - j, 0.0095, 0.0105));
    EXPECT_TRUE(evs.empty()) << "step " << s;
  }
  EXPECT_TRUE(det.events().empty());
}

TEST(StragglerDetector, MinValueFloorIgnoresMicrosecondPhases) {
  // The exposed-allreduce remainder under full overlap is microseconds
  // with enormous relative variance; a 1000x outlier there still says
  // nothing about rank health. min_value (5 ms default) gates it.
  StragglerDetector det;
  for (int s = 0; s < 10; ++s) {
    EXPECT_TRUE(det.observe(s, "allreduce",
                            world4(2e-6, 3e-6, 2.5e-6, 3e-3))
                    .empty());
  }
  EXPECT_FALSE(det.flagged(3));
}

TEST(StragglerDetector, QuietBelowMinWorld) {
  StragglerDetector det;  // min_world = 3
  for (int s = 0; s < 5; ++s) {
    EXPECT_TRUE(det.observe(s, "step", {{0, 0.010}, {1, 1.0}}).empty());
  }
  EXPECT_TRUE(det.events().empty());
}

TEST(StragglerDetector, ResetForgetsStreaksAndEvents) {
  StragglerDetector det;
  det.observe(0, "send", world4(0.010, 0.010, 0.010, 0.050));
  det.observe(1, "send", world4(0.010, 0.010, 0.010, 0.050));
  ASSERT_TRUE(det.flagged(3));
  det.reset();
  EXPECT_FALSE(det.flagged(3));
  EXPECT_TRUE(det.events().empty());
}

// ---- cluster aggregator ----------------------------------------------

TelemetryFrame frame(int rank, std::int64_t step, double step_s) {
  TelemetryFrame f;
  f.step = step;
  f.rank = rank;
  f.phases = {{"step", step_s}};
  f.values = {{"loss", 1.0}};
  return f;
}

TEST(ClusterAggregator, StepCompletesWhenEveryRankReported) {
  ClusterAggregator agg(3);
  EXPECT_FALSE(agg.ingest(frame(0, 0, 0.10)).has_value());
  EXPECT_FALSE(agg.ingest(frame(2, 0, 0.12)).has_value());
  const auto done = agg.ingest(frame(1, 0, 0.11));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->step, 0);
  const auto& rv = done->phases.at("step");
  ASSERT_EQ(rv.size(), 3u);
  EXPECT_EQ(agg.frames_ingested(), 3);
  EXPECT_EQ(agg.latest_step(), 0);
}

TEST(ClusterAggregator, OutOfOrderStepsCompleteIndependently) {
  ClusterAggregator agg(2);
  // Rank 0 races ahead to step 1 before rank 1 reports step 0.
  EXPECT_FALSE(agg.ingest(frame(0, 0, 0.1)).has_value());
  EXPECT_FALSE(agg.ingest(frame(0, 1, 0.1)).has_value());
  const auto s0 = agg.ingest(frame(1, 0, 0.1));
  ASSERT_TRUE(s0.has_value());
  EXPECT_EQ(s0->step, 0);
  const auto s1 = agg.ingest(frame(1, 1, 0.1));
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s1->step, 1);
}

TEST(ClusterAggregator, CompletionDropsStaleOlderSteps) {
  ClusterAggregator agg(2);
  // Step 0 never hears from rank 1 (it died); step 1 completes anyway
  // and the dead step can no longer complete afterwards.
  EXPECT_FALSE(agg.ingest(frame(0, 0, 0.1)).has_value());
  EXPECT_FALSE(agg.ingest(frame(0, 1, 0.1)).has_value());
  ASSERT_TRUE(agg.ingest(frame(1, 1, 0.1)).has_value());
  EXPECT_FALSE(agg.ingest(frame(1, 0, 0.1)).has_value());
}

TEST(ClusterAggregator, SetWorldDropsPendingAndRescales) {
  ClusterAggregator agg(3);
  EXPECT_FALSE(agg.ingest(frame(0, 5, 0.1)).has_value());
  EXPECT_FALSE(agg.ingest(frame(1, 5, 0.1)).has_value());
  agg.set_world(2);  // shrink: the missing rank may be dead
  EXPECT_EQ(agg.world(), 2);
  // The half-reported step 5 is gone; a fresh step completes at 2 ranks.
  EXPECT_FALSE(agg.ingest(frame(0, 6, 0.1)).has_value());
  ASSERT_TRUE(agg.ingest(frame(1, 6, 0.1)).has_value());
}

TEST(ClusterAggregator, PhasePercentilePoolsRollingWindows) {
  ClusterAggregator agg(1, /*window=*/64);
  for (int s = 0; s < 10; ++s) {
    agg.ingest(frame(0, s, 0.010 * (s + 1)));  // 0.01 .. 0.10
  }
  EXPECT_NEAR(agg.phase_percentile("step", 0.0), 0.010, 1e-9);
  EXPECT_NEAR(agg.phase_percentile("step", 100.0), 0.100, 1e-9);
  const double p50 = agg.phase_percentile("step", 50.0);
  EXPECT_GT(p50, 0.04);
  EXPECT_LT(p50, 0.07);
  EXPECT_EQ(agg.phase_percentile("no_such_phase", 50.0), 0.0);
  EXPECT_NEAR(agg.latest(0, "step"), 0.100, 1e-9);
  EXPECT_EQ(agg.latest(7, "step"), 0.0);
}

TEST(ClusterAggregator, WindowEvictsOldestValues) {
  ClusterAggregator agg(1, /*window=*/4);
  agg.ingest(frame(0, 0, 100.0));  // will be evicted
  for (int s = 1; s <= 4; ++s) agg.ingest(frame(0, s, 1.0));
  EXPECT_NEAR(agg.phase_percentile("step", 100.0), 1.0, 1e-9);
}

TEST(ClusterAggregator, JsonlAndPrometheusExports) {
  ClusterAggregator agg(2);
  agg.ingest(frame(0, 3, 0.25));
  const auto done = agg.ingest(frame(1, 3, 0.50));
  ASSERT_TRUE(done.has_value());
  const std::string line = agg.jsonl_line(*done);
  EXPECT_NE(line.find("\"step\":3"), std::string::npos);
  EXPECT_NE(line.find("\"0\":0.25"), std::string::npos);
  EXPECT_NE(line.find("\"1\":0.5"), std::string::npos);
  const std::string prom = agg.prometheus_text();
  EXPECT_NE(prom.find("dctrain_phase_seconds{rank=\"1\",phase=\"step\"} 0.5"),
            std::string::npos);
  EXPECT_NE(prom.find("dctrain_phase_seconds_cluster{phase=\"step\""),
            std::string::npos);
  EXPECT_NE(prom.find("dctrain_telemetry_frames_total 2"), std::string::npos);
  EXPECT_NE(prom.find("dctrain_value{rank=\"0\",name=\"loss\"} 1"),
            std::string::npos);
  // The top table renders one row per reporting rank without throwing.
  const auto table = agg.top_table();
  (void)table;
}

// ---- critical path on a hand-built trace ------------------------------

ReportEvent step_span(int rank, double ts_us, double dur_us,
                      std::int64_t step) {
  ReportEvent ev;
  ev.kind = ReportEvent::Kind::kSpan;
  ev.name = "step";
  ev.cat = "step";
  ev.rank = rank;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.arg = step;  // the step id rides the span arg
  return ev;
}

ReportEvent phase_span(int rank, const std::string& name, double ts_us,
                       double dur_us) {
  ReportEvent ev;
  ev.kind = ReportEvent::Kind::kSpan;
  ev.name = name;
  ev.cat = "phase";
  ev.rank = rank;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  return ev;
}

ReportEvent flow_half(ReportEvent::Kind kind, int rank, double ts_us,
                      std::uint64_t flow, std::int64_t step) {
  ReportEvent ev;
  ev.kind = kind;
  ev.rank = rank;
  ev.ts_us = ts_us;
  ev.flow = flow;
  ev.step = step;
  return ev;
}

TEST(CriticalPath, WalksFlowEdgesBackToTheStraggler) {
  // Three ranks, one step (id 7). Rank 1 stalls for 220 µs between
  // receiving from rank 2 (t=30) and sending to rank 0 (t=250); rank 0
  // then finishes last at t=400. The backward walk from rank 0 must
  // charge 140 µs to rank 0 (400→260), hop to rank 1, charge 220 µs
  // (250→30), hop to rank 2, and charge its 20 µs head (20→0).
  std::vector<ReportEvent> events;
  events.push_back(step_span(0, 0.0, 400.0, 7));
  events.push_back(step_span(1, 0.0, 300.0, 7));
  events.push_back(step_span(2, 0.0, 350.0, 7));
  // Flow A: rank 1 → rank 0, sent at 250, delivered at 260.
  events.push_back(flow_half(ReportEvent::Kind::kFlowStart, 1, 250.0, 101, 7));
  events.push_back(flow_half(ReportEvent::Kind::kFlowEnd, 0, 260.0, 101, 7));
  // Flow B: rank 2 → rank 1, sent at 20, delivered at 30.
  events.push_back(flow_half(ReportEvent::Kind::kFlowStart, 2, 20.0, 102, 7));
  events.push_back(flow_half(ReportEvent::Kind::kFlowEnd, 1, 30.0, 102, 7));
  // Rank 1 spends its stall inside an "allreduce" phase span.
  events.push_back(phase_span(1, "allreduce", 30.0, 220.0));
  events.push_back(phase_span(1, "data", 0.0, 20.0));

  const auto cp = obs::critical_path(events);
  ASSERT_EQ(cp.steps.size(), 1u);
  const auto& s = cp.steps[0];
  EXPECT_EQ(s.step, 7);
  EXPECT_EQ(s.end_rank, 0);
  EXPECT_EQ(s.hops, 2u);
  ASSERT_EQ(s.local_seconds.size(), 3u);
  EXPECT_NEAR(s.local_seconds.at(0), 140e-6, 1e-9);
  EXPECT_NEAR(s.local_seconds.at(1), 220e-6, 1e-9);
  EXPECT_NEAR(s.local_seconds.at(2), 20e-6, 1e-9);
  EXPECT_EQ(s.culprit, 1);
  EXPECT_NEAR(s.culprit_seconds, 220e-6, 1e-9);
  EXPECT_EQ(s.culprit_phase, "allreduce");
  EXPECT_EQ(cp.overall_culprit, 1);
  EXPECT_EQ(cp.rank_culprit_steps.at(1), 1u);

  // The renderer digests the result without throwing.
  const auto table = obs::critical_path_table(cp);
  (void)table;
}

TEST(CriticalPath, StepWithoutFlowsChargesTheLastRank) {
  std::vector<ReportEvent> events;
  events.push_back(step_span(0, 0.0, 100.0, 0));
  events.push_back(step_span(1, 0.0, 500.0, 0));
  const auto cp = obs::critical_path(events);
  ASSERT_EQ(cp.steps.size(), 1u);
  EXPECT_EQ(cp.steps[0].end_rank, 1);
  EXPECT_EQ(cp.steps[0].culprit, 1);
  EXPECT_EQ(cp.steps[0].hops, 0u);
  EXPECT_NEAR(cp.steps[0].culprit_seconds, 500e-6, 1e-9);
}

// ---- tracer: flow round-trip + ring cap -------------------------------

class TelemetryTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { clean(); }
  void TearDown() override { clean(); }
  static void clean() {
    Tracer::set_enabled(false);
    Tracer::reset();
    Tracer::set_thread_rank(obs::kUnattributedRank);
    Tracer::set_max_events_per_thread(0);
    Tracer::set_context(obs::TraceContext{});
  }
};

TEST_F(TelemetryTraceTest, FlowEventsRoundTripThroughChromeJson) {
  Tracer::set_enabled(true);
  Tracer::set_thread_rank(1);
  obs::TraceContext ctx;
  ctx.step = 3;
  ctx.collective = 2;
  ctx.chunk = 5;
  Tracer::set_context(ctx);
  Tracer::flow_start(/*flow_id=*/77, /*bytes=*/4096);
  // The receiver replays the *sender's* context on the end half.
  Tracer::set_thread_rank(0);
  Tracer::flow_end(/*flow_id=*/77, ctx, /*bytes=*/4096);
  Tracer::set_enabled(false);

  std::ostringstream os;
  Tracer::write_chrome_trace(os);
  const auto events = obs::parse_chrome_trace(os.str());

  const ReportEvent* start = nullptr;
  const ReportEvent* end = nullptr;
  for (const auto& ev : events) {
    if (ev.kind == ReportEvent::Kind::kFlowStart) start = &ev;
    if (ev.kind == ReportEvent::Kind::kFlowEnd) end = &ev;
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(end, nullptr);
  EXPECT_EQ(start->flow, 77u);
  EXPECT_EQ(end->flow, 77u);
  EXPECT_EQ(start->rank, 1);
  EXPECT_EQ(end->rank, 0);
  for (const ReportEvent* ev : {start, end}) {
    EXPECT_EQ(ev->step, 3);
    EXPECT_EQ(ev->collective, 2);
    EXPECT_EQ(ev->chunk, 5);
    EXPECT_EQ(ev->bytes, 4096);
  }
}

TEST_F(TelemetryTraceTest, RingCapOverwritesOldestAndCountsDrops) {
  Tracer::set_max_events_per_thread(4);
  EXPECT_EQ(Tracer::max_events_per_thread(), 4u);
  Tracer::set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    Tracer::instant("tick", "test", i);
  }
  Tracer::set_enabled(false);
  EXPECT_EQ(Tracer::event_count(), 4u);
  EXPECT_EQ(Tracer::dropped_count(), 6u);
  // The survivors are the newest four events.
  std::vector<std::int64_t> args;
  for (const auto& ce : Tracer::collect()) args.push_back(ce.event.arg);
  std::sort(args.begin(), args.end());
  EXPECT_EQ(args, (std::vector<std::int64_t>{6, 7, 8, 9}));
  Tracer::reset();
  EXPECT_EQ(Tracer::dropped_count(), 0u);
}

// ---- end to end: injected straggler flagged within five steps ---------

trainer::TrainerConfig tiny_config() {
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 2;
  cfg.dataset.seed = 11;
  cfg.dataset.images = 64;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.base_lr = 0.02;
  cfg.seed = 5;
  cfg.telemetry.enabled = true;
  return cfg;
}

TEST(TelemetryPlaneE2E, InjectedStragglerFlaggedWithinFiveSteps) {
  // Rank 2 sleeps 5 ms before every send. A synchronous collective
  // slows *everyone* equally, so phase wall times can't separate the
  // culprit — the per-rank send-side accounting (the "send" phase) must.
  simmpi::FaultPlan plan(77);
  plan.add({.kind = simmpi::FaultKind::kStraggle, .rank = 2,
            .probability = 1.0, .delay_ms = 5.0});
  simmpi::Runtime rt(4);
  rt.transport().install_fault_plan(&plan);
  rt.run([](simmpi::Communicator& comm) {
    auto cfg = tiny_config();
    trainer::DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < 8; ++i) trainer.step();
    if (comm.rank() != 0) return;
    auto* plane = trainer.telemetry_plane();
    ASSERT_NE(plane, nullptr);
    ASSERT_FALSE(plane->disabled());
    ASSERT_NE(plane->detector(), nullptr);
    const auto& evs = plane->detector()->events();
    const auto it = std::find_if(
        evs.begin(), evs.end(),
        [](const obs::StragglerEvent& e) { return e.phase == "send"; });
    ASSERT_NE(it, evs.end()) << "straggler never flagged in the send phase";
    EXPECT_EQ(it->rank, 2);
    EXPECT_LE(it->step, 4) << "flag must land within five steps";
    EXPECT_GT(it->z, 3.5);
    // The collector heard from everyone.
    ASSERT_NE(plane->aggregator(), nullptr);
    EXPECT_GE(plane->aggregator()->frames_ingested(), 4 * 4);
  });
  EXPECT_GT(plan.injected(), 0u);
}

TEST(TelemetryPlaneE2E, HealthyClusterHasNoSendPhaseFlags) {
  // Compute phases can jitter on an oversubscribed CI box; the
  // send-side accounting must not — absent faults, transport sends are
  // microseconds, far under the detector's min_value floor.
  simmpi::Runtime rt(4);
  rt.run([](simmpi::Communicator& comm) {
    auto cfg = tiny_config();
    trainer::DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < 6; ++i) trainer.step();
    if (comm.rank() != 0) return;
    auto* plane = trainer.telemetry_plane();
    ASSERT_NE(plane, nullptr);
    for (const auto& ev : plane->detector()->events()) {
      EXPECT_NE(ev.phase, "send")
          << "rank " << ev.rank << " flagged at step " << ev.step;
    }
  });
}

}  // namespace
}  // namespace dct
