// Tests for the src/comm subsystem: bucket-plan partitioning, codec
// round-trip properties, the simmpi progress engine, and — the load-
// bearing guarantee — that overlapped gradient reduction produces the
// SAME parameter trajectory as the legacy blocking path, bit for bit,
// on the identity codec.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "allreduce/algorithm.hpp"
#include "comm/bucket_plan.hpp"
#include "comm/codec.hpp"
#include "comm/overlap.hpp"
#include "simmpi/progress.hpp"
#include "simmpi/runtime.hpp"
#include "trainer/distributed_trainer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dct::comm {
namespace {

// ---------------------------------------------------------------------------
// BucketPlan

TEST(BucketPlan, ZeroBytesMeansSingleBucket) {
  const std::size_t sizes[] = {10, 20, 30};
  const auto plan = BucketPlan::build(sizes, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan.bucket(0).begin, 0u);
  EXPECT_EQ(plan.bucket(0).end, 60u);
  EXPECT_EQ(plan.bucket(0).first_segment, 0u);
  EXPECT_EQ(plan.bucket(0).last_segment, 2u);
  EXPECT_EQ(plan.total_elements(), 60u);
}

TEST(BucketPlan, BucketsAreLayerAlignedAndCoverPayload) {
  // 25-float cap: layers accumulate until a bucket reaches >= 25.
  const std::size_t sizes[] = {10, 10, 10, 10, 10};
  const auto plan = BucketPlan::build(sizes, 25 * sizeof(float));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.bucket(0).end, 30u);  // 10+10 < 25, +10 -> 30 closes
  EXPECT_EQ(plan.bucket(1).begin, 30u);
  EXPECT_EQ(plan.bucket(1).end, 50u);
  // Buckets tile the payload with no gaps and segment-aligned edges.
  std::size_t prev = 0;
  for (const auto& b : plan.buckets()) {
    EXPECT_EQ(b.begin, prev);
    prev = b.end;
  }
  EXPECT_EQ(prev, plan.total_elements());
}

TEST(BucketPlan, OversizedSegmentGetsOwnBucket) {
  // An oversized layer arriving on an empty bucket lands alone — it is
  // never split, and it closes the bucket immediately rather than
  // dragging later layers in.
  const std::size_t sizes[] = {1000, 2, 2};
  const auto plan = BucketPlan::build(sizes, 16);  // 4-float cap
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.bucket(0).elements(), 1000u);
  EXPECT_EQ(plan.bucket(0).first_segment, 0u);
  EXPECT_EQ(plan.bucket(0).last_segment, 0u);
  EXPECT_EQ(plan.bucket(1).elements(), 4u);
}

TEST(BucketPlan, ZeroElementSegmentsAttach) {
  const std::size_t sizes[] = {0, 8, 0, 0, 8, 0};
  const auto plan = BucketPlan::build(sizes, 8 * sizeof(float));
  EXPECT_EQ(plan.total_elements(), 16u);
  // Every segment index is owned by exactly one bucket.
  std::size_t seg = 0;
  for (const auto& b : plan.buckets()) {
    EXPECT_EQ(b.first_segment, seg);
    seg = b.last_segment + 1;
  }
  EXPECT_EQ(seg, 6u);
}

TEST(BucketPlan, BucketOfAndChunkEnds) {
  const std::size_t sizes[] = {4, 4, 4, 4};
  const auto plan = BucketPlan::build(sizes, 8 * sizeof(float));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.bucket_of(0), 0u);
  EXPECT_EQ(plan.bucket_of(7), 0u);
  EXPECT_EQ(plan.bucket_of(8), 1u);
  EXPECT_EQ(plan.bucket_of(15), 1u);
  const auto ends = plan.chunk_ends();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 8u);
  EXPECT_EQ(ends[1], 16u);
}

// ---------------------------------------------------------------------------
// Codecs

std::vector<float> random_grads(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.next_float() * 4.0f - 2.0f;
  return v;
}

TEST(Codec, RegistryNamesResolve) {
  for (const auto& name : codec_names()) {
    const auto codec = make_codec(name);
    ASSERT_NE(codec, nullptr) << name;
    EXPECT_GT(codec->encoded_bytes(128), 0u);
  }
  EXPECT_THROW(make_codec("zstd-17"), CheckError);
}

TEST(Codec, IdentityRoundTripIsBitExact) {
  const auto codec = make_codec("identity");
  EXPECT_TRUE(codec->lossless());
  // Include the payloads a sloppy implementation would corrupt:
  // negative zero, denormals, infinities.
  std::vector<float> in = {0.0f, -0.0f, 1.0f, -1.0f, 1e-42f, -1e-42f,
                           INFINITY, -INFINITY, 3.14159265f};
  const auto extra = random_grads(1000, 7);
  in.insert(in.end(), extra.begin(), extra.end());

  std::vector<std::byte> wire;
  codec->encode(in, wire);
  EXPECT_EQ(wire.size(), codec->encoded_bytes(in.size()));
  std::vector<float> out(in.size());
  codec->decode(wire, out);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), in.size() * sizeof(float)), 0);
}

TEST(Codec, Fp16RoundTripBoundsAndExactValues) {
  const auto codec = make_codec("fp16");
  EXPECT_FALSE(codec->lossless());
  EXPECT_EQ(codec->encoded_bytes(100), 200u);

  // Values exactly representable in binary16 survive unchanged.
  const std::vector<float> exact = {0.0f, 1.0f, -1.0f, 0.5f, -2.0f,
                                    1024.0f, 0.25f, -0.125f};
  std::vector<std::byte> wire;
  std::vector<float> out(exact.size());
  codec->encode(exact, wire);
  codec->decode(wire, out);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(exact[i], out[i]) << "i=" << i;
  }

  // Relative error of a half round-trip is at most 2^-11 for normals.
  const auto in = random_grads(4096, 21);
  out.resize(in.size());
  codec->encode(in, wire);
  codec->decode(wire, out);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_LE(std::abs(out[i] - in[i]), std::abs(in[i]) * (1.0f / 2048) + 1e-8f)
        << "i=" << i;
  }
}

TEST(Codec, Int8ErrorBoundedByHalfStep) {
  const auto codec = make_codec("int8-ef");
  EXPECT_FALSE(codec->lossless());

  const auto in = random_grads(4096, 33);
  float maxabs = 0.0f;
  for (float x : in) maxabs = std::max(maxabs, std::abs(x));

  std::vector<std::byte> wire;
  std::vector<float> out(in.size());
  codec->encode(in, wire);
  EXPECT_EQ(wire.size(), codec->encoded_bytes(in.size()));
  codec->decode(wire, out);
  // Linear quantizer with scale maxabs/127: error <= scale/2.
  const float bound = maxabs / 127.0f / 2.0f + 1e-9f;
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_LE(std::abs(out[i] - in[i]), bound) << "i=" << i;
  }

  // All-zero slice round-trips exactly (no 0/0 scale blowup).
  const std::vector<float> zeros(64, 0.0f);
  out.assign(zeros.size(), 42.0f);
  codec->encode(zeros, wire);
  codec->decode(wire, out);
  for (float x : out) EXPECT_EQ(x, 0.0f);
}

TEST(Codec, ErrorFeedbackRecoversMeanGradient) {
  // EF-SGD property: quantizing (g + r) and carrying the error in r
  // makes the *sum* of decoded gradients track the sum of true
  // gradients; the bias does not accumulate. Simulate the scheduler's
  // loop directly against the int8 codec.
  const auto codec = make_codec("int8");
  const auto g = random_grads(256, 55);
  std::vector<float> r(g.size(), 0.0f), comp(g.size()), dec(g.size());
  std::vector<double> sum(g.size(), 0.0);
  std::vector<std::byte> wire;

  const int steps = 200;
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < g.size(); ++i) comp[i] = g[i] + r[i];
    codec->encode(comp, wire);
    codec->decode(wire, dec);
    for (std::size_t i = 0; i < g.size(); ++i) {
      r[i] = comp[i] - dec[i];
      sum[i] += dec[i];
    }
  }
  // Residual stays bounded by one quantization step, so the mean decoded
  // gradient converges to the true one at rate 1/steps.
  float maxabs = 0.0f;
  for (float x : g) maxabs = std::max(maxabs, std::abs(x));
  const double tol = maxabs / 127.0 / steps + 1e-6;
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(sum[i] / steps, g[i], tol) << "i=" << i;
  }
}

// ---------------------------------------------------------------------------
// ProgressEngine

TEST(ProgressEngine, IallreduceSumMatchesBlocking) {
  simmpi::Runtime::execute(4, [](simmpi::Communicator& comm) {
    simmpi::ProgressEngine engine(comm);
    std::vector<float> a(64), b(64);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<float>(comm.rank() + 1) * static_cast<float>(i);
      b[i] = a[i];
    }
    auto req = engine.iallreduce_sum(a);
    comm.allreduce_inplace(std::span<float>(b),
                           [](float x, float y) { return x + y; });
    req.wait();
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  });
}

TEST(ProgressEngine, OpsRunInSubmissionOrder) {
  simmpi::Runtime::execute(2, [](simmpi::Communicator& comm) {
    simmpi::ProgressEngine engine(comm);
    std::vector<int> order;
    std::vector<simmpi::Request> reqs;
    for (int k = 0; k < 8; ++k) {
      reqs.push_back(engine.submit([k, &order](simmpi::Communicator& c) {
        c.barrier();  // collective: deadlocks unless both ranks agree on order
        order.push_back(k);
        return simmpi::Status{c.rank(), 0, 0};
      }));
    }
    simmpi::wait_all(reqs);
    ASSERT_EQ(order.size(), 8u);
    for (int k = 0; k < 8; ++k) EXPECT_EQ(order[k], k);
  });
}

TEST(ProgressEngine, ExceptionPropagatesToWaiterAndPoisons) {
  simmpi::Runtime::execute(2, [](simmpi::Communicator& comm) {
    simmpi::ProgressEngine engine(comm);
    auto bad = engine.submit([](simmpi::Communicator&) -> simmpi::Status {
      throw std::runtime_error("injected collective failure");
    });
    EXPECT_THROW(bad.wait(), std::runtime_error);
    // The engine is poisoned: later submissions fail fast instead of
    // running collectives the peer will never match.
    auto after = engine.submit(
        [](simmpi::Communicator& c) { return simmpi::Status{c.rank(), 0, 0}; });
    EXPECT_THROW(after.wait(), std::runtime_error);
  });
}

// ---------------------------------------------------------------------------
// GradComm + trainer: bit-identical overlap

trainer::TrainerConfig tiny_config() {
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 2;
  cfg.dataset.seed = 11;
  cfg.dataset.images = 64;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.base_lr = 0.02;
  cfg.seed = 5;
  return cfg;
}

std::vector<float> run_trainer(int ranks, const trainer::TrainerConfig& cfg,
                               int steps, std::uint64_t* comm_bytes = nullptr) {
  std::vector<float> params;
  std::uint64_t bytes = 0;  // rank 0's traffic only: ranks run as threads
  simmpi::Runtime::execute(ranks, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < steps; ++i) {
      const auto m = trainer.step();
      if (comm.rank() == 0) bytes += m.comm_bytes;
    }
    if (comm.rank() == 0) params = trainer.snapshot_params();
  });
  if (comm_bytes != nullptr) *comm_bytes = bytes;
  return params;
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(Overlap, SingleBucketMatchesLegacyBitForBit) {
  // One bucket spanning the payload reduces over exactly the span the
  // legacy monolithic path reduces, so identity-codec overlap must give
  // the same parameters down to the last bit — at every rank count.
  for (int ranks : {2, 4, 8}) {
    auto legacy = tiny_config();
    const auto want = run_trainer(ranks, legacy, 4);

    auto overlapped = tiny_config();
    overlapped.comm.overlap = true;
    overlapped.comm.bucket_bytes = 0;  // single bucket
    const auto got = run_trainer(ranks, overlapped, 4);
    expect_bit_identical(want, got);
  }
}

TEST(Overlap, MultiBucketMatchesBlockingBitForBit) {
  // With several buckets the chunked arithmetic differs from monolithic
  // (each bucket reduces independently), so the reference is the
  // bucketed-BLOCKING path over the same plan.
  for (int ranks : {2, 4, 8}) {
    auto blocking = tiny_config();
    blocking.comm.bucket_bytes = 16 * 1024;  // several buckets for SmallCNN
    blocking.comm.overlap = false;
    const auto want = run_trainer(ranks, blocking, 4);

    auto overlapped = blocking;
    overlapped.comm.overlap = true;
    const auto got = run_trainer(ranks, overlapped, 4);
    expect_bit_identical(want, got);
  }
}

TEST(Overlap, ReportsCommBytes) {
  auto cfg = tiny_config();
  cfg.comm.overlap = true;
  cfg.comm.bucket_bytes = 16 * 1024;
  std::uint64_t overlap_bytes = 0;
  run_trainer(2, cfg, 2, &overlap_bytes);
  EXPECT_GT(overlap_bytes, 0u);

  // Legacy path reports traffic too, and identity-codec bucketing moves
  // the same float payload.
  std::uint64_t legacy_bytes = 0;
  run_trainer(2, tiny_config(), 2, &legacy_bytes);
  EXPECT_GT(legacy_bytes, 0u);
}

TEST(Overlap, CompressionReducesWireBytes) {
  auto identity = tiny_config();
  identity.comm.bucket_bytes = 16 * 1024;
  std::uint64_t identity_bytes = 0;
  run_trainer(2, identity, 2, &identity_bytes);

  auto int8 = identity;
  int8.comm.codec = "int8-ef";
  std::uint64_t int8_bytes = 0;
  run_trainer(2, int8, 2, &int8_bytes);

  ASSERT_GT(identity_bytes, 0u);
  ASSERT_GT(int8_bytes, 0u);
  // ~4x fewer wire bytes (plus per-bucket scale headers).
  EXPECT_LT(int8_bytes, identity_bytes / 3);
}

TEST(Overlap, LossyCodecsStillLearn) {
  // Compression is lossy but with error feedback the trajectory still
  // descends: loss after a few steps is below the 4-class random-guess
  // plateau of ln(4) ~ 1.386 ... give it slack, just require progress.
  for (const char* codec : {"fp16", "int8-ef"}) {
    auto cfg = tiny_config();
    cfg.comm.overlap = true;
    cfg.comm.bucket_bytes = 16 * 1024;
    cfg.comm.codec = codec;
    double first = 0.0, last = 0.0;
    simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
      trainer::DistributedTrainer trainer(comm, cfg);
      const double f = trainer.step().loss;
      double l = f;
      for (int i = 0; i < 6; ++i) l = trainer.step().loss;
      if (comm.rank() == 0) {
        first = f;
        last = l;
      }
    });
    EXPECT_LT(last, first) << codec;
  }
}

TEST(GradComm, BlockingStandaloneReducesEveryBucket) {
  simmpi::Runtime::execute(4, [](simmpi::Communicator& comm) {
    const std::size_t sizes[] = {100, 50, 200, 3};
    const auto algo = allreduce::make_algorithm("ring");
    CommConfig cfg;
    cfg.bucket_bytes = 128 * sizeof(float);
    GradComm gc(comm, *algo, cfg, sizes);
    ASSERT_GT(gc.plan().size(), 1u);

    std::vector<float> grads(353);
    for (std::size_t i = 0; i < grads.size(); ++i) {
      grads[i] = static_cast<float>(i % 17) + comm.rank();
    }
    auto want = grads;
    comm.allreduce_inplace(std::span<float>(want),
                           [](float a, float b) { return a + b; });

    gc.begin_step(grads);
    const auto stats = gc.finish();
    EXPECT_EQ(stats.buckets, gc.plan().size());
    EXPECT_GT(stats.wire_bytes, 0u);
    for (std::size_t i = 0; i < grads.size(); ++i) {
      EXPECT_EQ(grads[i], want[i]) << "i=" << i;
    }
  });
}

TEST(GradComm, OverlapStandaloneMatchesBlocking) {
  simmpi::Runtime::execute(4, [](simmpi::Communicator& comm) {
    const std::size_t sizes[] = {64, 64, 64, 64};
    const auto algo = allreduce::make_algorithm("ring");
    CommConfig cfg;
    cfg.bucket_bytes = 64 * sizeof(float);

    std::vector<float> blocking(256), overlap(256);
    for (std::size_t i = 0; i < blocking.size(); ++i) {
      blocking[i] = static_cast<float>(comm.rank()) * 0.25f +
                    static_cast<float>(i) * 0.5f;
      overlap[i] = blocking[i];
    }
    {
      GradComm gc(comm, *algo, cfg, sizes);
      gc.begin_step(blocking);
      gc.finish();
    }
    {
      auto ocfg = cfg;
      ocfg.overlap = true;
      GradComm gc(comm, *algo, ocfg, sizes);
      gc.begin_step(overlap);
      // Feed ranges rear-first, the order backward produces them.
      for (std::size_t seg = 4; seg-- > 0;) {
        gc.on_range_ready(seg * 64, (seg + 1) * 64);
      }
      const auto stats = gc.finish();
      EXPECT_EQ(stats.buckets, 4u);
    }
    for (std::size_t i = 0; i < blocking.size(); ++i) {
      EXPECT_EQ(blocking[i], overlap[i]) << "i=" << i;
    }
  });
}

}  // namespace
}  // namespace dct::comm
