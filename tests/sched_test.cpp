// Multi-tenant cluster scheduler tests (DESIGN.md §15).
//
// Two layers, matching the subsystem's own split:
//   - SchedCore policy tests run in virtual time with hand-driven
//     confirmations: gang atomicity, backfill, aging, preemption
//     ordering, and a randomized 100-job soak that asserts rank
//     conservation after every tick.
//   - ClusterManager end-to-end tests run real gangs on a simulated
//     cluster: preemption checkpoint/resume bit-identity against an
//     uninterrupted reference run, and the full cede → preempt →
//     resume → grow elastic-sharing cycle.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/contention.hpp"
#include "netsim/topology.hpp"
#include "sched/cluster_manager.hpp"
#include "sched/job.hpp"
#include "sched/sched_core.hpp"
#include "simmpi/runtime.hpp"
#include "trainer/checkpoint_io.hpp"
#include "trainer/distributed_trainer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dct::sched {
namespace {

JobSpec spec(std::string id, Priority pri, int min_ranks, int max_ranks,
             std::int64_t iterations = 10, double submit = 0.0) {
  JobSpec s;
  s.id = std::move(id);
  s.priority = pri;
  s.min_ranks = min_ranks;
  s.max_ranks = max_ranks;
  s.iterations = iterations;
  s.submit_time = submit;
  return s;
}

bool placed(const std::vector<Action>& acts, const std::string& job) {
  return std::any_of(acts.begin(), acts.end(), [&](const Action& a) {
    return a.kind == Action::Kind::kPlace && a.job == job;
  });
}

// ---- gang atomicity ---------------------------------------------------

TEST(SchedCore, GangNeverPartiallyPlaces) {
  SchedConfig cfg;
  cfg.ranks = 8;
  SchedCore core(cfg);

  core.submit(spec("holder", Priority::kStandard, 4, 4), 0.0);
  auto acts = core.tick(0.0);
  ASSERT_TRUE(placed(acts, "holder"));
  ASSERT_EQ(core.free_ranks(), 4);

  // A 6-rank gang must not grab the 4 free ranks: same class, so no
  // preemption; rigid, so no donor. It waits whole.
  core.submit(spec("gang6", Priority::kStandard, 6, 6), 1.0);
  for (int i = 0; i < 5; ++i) {
    acts = core.tick(1.0 + i);
    EXPECT_FALSE(placed(acts, "gang6"));
    EXPECT_EQ(core.free_ranks(), 4);
    EXPECT_EQ(core.query("gang6")->state, JobState::kQueued);
    core.check_conservation();
  }

  // Capacity appears → the gang starts all at once on 6 ranks.
  core.job_finished("holder", 6.0);
  acts = core.tick(6.0);
  ASSERT_TRUE(placed(acts, "gang6"));
  EXPECT_EQ(core.query("gang6")->ranks.size(), 6u);
  EXPECT_EQ(core.free_ranks(), 2);
  core.check_conservation();
}

// ---- backfill ---------------------------------------------------------

TEST(SchedCore, SmallJobBackfillsBehindBlockedHead) {
  SchedConfig cfg;
  cfg.ranks = 8;
  SchedCore core(cfg);

  core.submit(spec("big", Priority::kStandard, 6, 6), 0.0);
  ASSERT_TRUE(placed(core.tick(0.0), "big"));

  // Head needs 6, only 2 free, nothing to reclaim → blocked; the
  // younger 2-rank job leapfrogs it into the hole.
  core.submit(spec("head", Priority::kStandard, 6, 6), 1.0);
  core.submit(spec("small", Priority::kStandard, 2, 2), 2.0);
  const auto acts = core.tick(2.0);
  EXPECT_FALSE(placed(acts, "head"));
  EXPECT_TRUE(placed(acts, "small"));
  EXPECT_EQ(core.free_ranks(), 0);
  EXPECT_EQ(core.query("head")->state, JobState::kQueued);
  core.check_conservation();
}

TEST(SchedCore, BackfillReservesRanksBeingReclaimed) {
  SchedConfig cfg;
  cfg.ranks = 8;
  SchedCore core(cfg);

  core.submit(spec("victim", Priority::kBatch, 6, 6), 0.0);
  ASSERT_TRUE(placed(core.tick(0.0), "victim"));

  // Production head forces a preemption; until the eviction confirms,
  // the 2 free ranks are reserved for the head, so the backfiller must
  // NOT take them (it would steal the head's gang as it assembles).
  core.submit(spec("head", Priority::kProduction, 8, 8), 1.0);
  auto acts = core.tick(1.0);
  ASSERT_TRUE(std::any_of(acts.begin(), acts.end(), [](const Action& a) {
    return a.kind == Action::Kind::kPreempt && a.job == "victim";
  }));
  core.submit(spec("filler", Priority::kBatch, 2, 2), 1.5);
  acts = core.tick(1.5);
  EXPECT_FALSE(placed(acts, "filler"));

  core.job_preempted("victim", 2.0);
  acts = core.tick(2.0);
  EXPECT_TRUE(placed(acts, "head"));
  EXPECT_FALSE(placed(acts, "filler"));  // head took everything
  core.check_conservation();
}

// ---- aging ------------------------------------------------------------

TEST(SchedCore, AgingPromotesStarvedLowPriorityJob) {
  SchedConfig cfg;
  cfg.ranks = 4;
  cfg.aging_interval = 10.0;
  SchedCore core(cfg);

  core.submit(spec("hog", Priority::kStandard, 4, 4), 0.0);
  ASSERT_TRUE(placed(core.tick(0.0), "hog"));

  // The batch job waits 100 s (effective priority 0 + 10); the fresh
  // standard job is only 1 + 0. The starved job goes first.
  core.submit(spec("old-batch", Priority::kBatch, 4, 4), 0.0);
  core.submit(spec("new-std", Priority::kStandard, 4, 4), 100.0);
  core.job_finished("hog", 100.0);
  const auto acts = core.tick(100.0);
  EXPECT_TRUE(placed(acts, "old-batch"));
  EXPECT_FALSE(placed(acts, "new-std"));
  EXPECT_EQ(core.query("new-std")->state, JobState::kQueued);
  core.check_conservation();
}

// ---- preemption policy ------------------------------------------------

TEST(SchedCore, PreemptsStrictlyLowerClassOnly) {
  SchedConfig cfg;
  cfg.ranks = 4;
  SchedCore core(cfg);

  core.submit(spec("peer", Priority::kProduction, 4, 4), 0.0);
  ASSERT_TRUE(placed(core.tick(0.0), "peer"));

  // Same base class → never preempted, however long the head waits
  // (aging raises queue order, not preemptor rights).
  core.submit(spec("head", Priority::kProduction, 4, 4), 1.0);
  for (double t = 1.0; t < 200.0; t += 50.0) {
    for (const auto& a : core.tick(t)) {
      EXPECT_NE(a.kind, Action::Kind::kPreempt);
    }
  }
  EXPECT_EQ(core.query("head")->state, JobState::kQueued);
}

TEST(SchedCore, PreemptedJobResumesAtEvictionWidth) {
  SchedConfig cfg;
  cfg.ranks = 8;
  SchedCore core(cfg);

  // Elastic batch job spreads over the whole cluster…
  core.submit(spec("stretchy", Priority::kBatch, 2, 8), 0.0);
  ASSERT_TRUE(placed(core.tick(0.0), "stretchy"));
  ASSERT_EQ(core.query("stretchy")->ranks.size(), 8u);

  // …is evicted, and must re-place at exactly the checkpointed width
  // even though, post-burst, it could stretch again. Reclamation asks
  // the elastic donor to cede first; once it refuses, the preemption
  // lands on the next tick.
  core.submit(spec("burst", Priority::kProduction, 8, 8), 1.0);
  auto acts = core.tick(1.0);
  ASSERT_TRUE(std::any_of(acts.begin(), acts.end(), [](const Action& a) {
    return a.kind == Action::Kind::kShrink && a.job == "stretchy";
  }));
  core.shrink_rejected("stretchy");
  acts = core.tick(1.1);
  ASSERT_TRUE(std::any_of(acts.begin(), acts.end(), [](const Action& a) {
    return a.kind == Action::Kind::kPreempt && a.job == "stretchy";
  }));
  core.job_preempted("stretchy", 2.0);
  ASSERT_TRUE(placed(core.tick(2.0), "burst"));
  core.job_finished("burst", 3.0);
  acts = core.tick(3.0);
  ASSERT_TRUE(placed(acts, "stretchy"));
  const auto it = std::find_if(acts.begin(), acts.end(), [](const Action& a) {
    return a.kind == Action::Kind::kPlace && a.job == "stretchy";
  });
  EXPECT_TRUE(it->resume);
  EXPECT_EQ(it->ranks.size(), 8u);
  core.check_conservation();
}

// ---- randomized soak --------------------------------------------------

// 100 random jobs on 16 ranks, with delayed confirmations and
// occasional shrink refusals / grow failures. After every tick the
// ledger must balance (every rank owned by exactly one party), and at
// the end every job must have finished — zero lost jobs.
TEST(SchedCore, RandomizedSoak100Jobs16Ranks) {
  SchedConfig cfg;
  cfg.ranks = 16;
  cfg.aging_interval = 2.0;
  cfg.starvation_age = 6.0;
  SchedCore core(cfg);
  Rng rng(0x50AC5EED);

  std::vector<JobSpec> arrivals;
  for (int i = 0; i < 100; ++i) {
    const auto cls = rng.next_below(10);
    const Priority pri = cls < 5   ? Priority::kBatch
                         : cls < 8 ? Priority::kStandard
                                   : Priority::kProduction;
    const int mn = 1 + static_cast<int>(rng.next_below(6));
    const int mx = rng.next_below(3) == 0
                       ? std::min(cfg.ranks, mn + 2)
                       : mn;
    auto s = spec("job" + std::to_string(i), pri, mn, mx, 1);
    s.submit_time = 0.2 * static_cast<double>(rng.next_below(100));
    arrivals.push_back(std::move(s));
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const JobSpec& a, const JobSpec& b) {
                     return a.submit_time < b.submit_time;
                   });

  struct Sim {
    double remaining = 0.0;  ///< virtual seconds of work left
    double placed_at = 0.0;
    bool running = false;
  };
  struct Op {
    double due = 0.0;
    Action::Kind kind = Action::Kind::kPreempt;
    std::string job;
  };
  std::map<std::string, Sim> sim;
  for (const auto& s : arrivals) {
    sim[s.id].remaining = 0.2 + 0.02 * static_cast<double>(rng.next_below(90));
  }
  std::vector<Op> ops;
  const auto outstanding = [&](const std::string& id) {
    return std::any_of(ops.begin(), ops.end(),
                       [&](const Op& o) { return o.job == id; });
  };

  std::size_t fed = 0;
  double t = 0.0;
  for (; t < 500.0; t += 0.1) {
    while (fed < arrivals.size() && arrivals[fed].submit_time <= t) {
      core.submit(arrivals[fed], t);
      ++fed;
    }

    // Jobs whose work has elapsed finish — but only once no command is
    // in flight for them (the command word reaches a gang before its
    // next step, so a real gang never finishes past an undelivered op).
    for (auto& [id, s] : sim) {
      if (s.running && !outstanding(id) && t - s.placed_at >= s.remaining) {
        core.job_finished(id, t);
        s.running = false;
        s.remaining = 0.0;
      }
    }

    // Deliver due confirmations.
    for (std::size_t i = 0; i < ops.size();) {
      if (ops[i].due > t) {
        ++i;
        continue;
      }
      const Op o = ops[i];
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      Sim& s = sim[o.job];
      switch (o.kind) {
        case Action::Kind::kPreempt:
          s.remaining = std::max(0.05, s.remaining - (t - s.placed_at));
          s.running = false;
          core.job_preempted(o.job, t);
          break;
        case Action::Kind::kShrink:
          if (rng.next_below(4) == 0) {
            core.shrink_rejected(o.job);
          } else {
            core.job_shrunk(o.job, t);
          }
          break;
        case Action::Kind::kGrow:
          if (rng.next_below(7) == 0) {
            core.grow_failed(o.job, t);
          } else {
            core.job_grew(o.job, t);
          }
          break;
        default:
          FAIL() << "unexpected op";
      }
    }

    for (const auto& a : core.tick(t)) {
      switch (a.kind) {
        case Action::Kind::kPlace:
          sim[a.job].running = true;
          sim[a.job].placed_at = t;
          break;
        case Action::Kind::kPreempt:
        case Action::Kind::kShrink:
        case Action::Kind::kGrow:
          ops.push_back({t + 0.05 + 0.01 * static_cast<double>(
                                        rng.next_below(30)),
                         a.kind, a.job});
          break;
        case Action::Kind::kKill:
          FAIL() << "no job was cancelled";
      }
    }

    ASSERT_NO_THROW(core.check_conservation()) << "at t=" << t;
    if (fed == arrivals.size() && core.all_terminal()) break;
  }

  EXPECT_TRUE(core.all_terminal()) << "stalled at t=" << t;
  const auto s = core.summary();
  EXPECT_EQ(s.submitted, 100);
  EXPECT_EQ(s.finished, 100);
  EXPECT_EQ(s.cancelled, 0);  // zero lost jobs
  EXPECT_EQ(core.free_ranks(), cfg.ranks);
}

// ---- fabric contention ------------------------------------------------

TEST(Contention, DisjointLeavesDoNotInterfere) {
  netsim::FatTree::Config tc;
  tc.hosts = 8;
  tc.hosts_per_leaf = 4;
  const netsim::FatTree tree(tc);
  const std::vector<netsim::JobPlacement> jobs{
      {0, {0, 1, 2, 3}},  // leaf 0
      {1, {4, 5, 6, 7}},  // leaf 1
  };
  for (const auto& c : netsim::estimate_contention(tree, jobs)) {
    EXPECT_DOUBLE_EQ(c.slowdown, 1.0) << "job " << c.job;
  }
}

TEST(Contention, InterleavedJobsShareFabricLinks) {
  // One spine, one rail: every cross-leaf flow shares the same two
  // fabric links, so two interleaved rings see exactly 2x slowdown.
  netsim::FatTree::Config tc;
  tc.hosts = 8;
  tc.hosts_per_leaf = 4;
  tc.spines = 1;
  tc.rails = 1;
  const netsim::FatTree tree(tc);
  const std::vector<netsim::JobPlacement> jobs{
      {0, {0, 4}},
      {1, {1, 5}},
  };
  const auto out = netsim::estimate_contention(tree, jobs);
  ASSERT_EQ(out.size(), 2u);
  for (const auto& c : out) {
    EXPECT_DOUBLE_EQ(c.slowdown, 2.0) << "job " << c.job;
    EXPECT_GE(c.busiest_link, 0);
    EXPECT_FALSE(c.busiest_name.empty());
  }
}

// ---- end-to-end: preemption checkpoint/resume bit-identity ------------

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

trainer::TrainerConfig tiny_template(const std::string& ckpt_dir) {
  trainer::TrainerConfig cfg;
  cfg.gpus_per_node = 1;
  cfg.batch_per_gpu = 2;
  cfg.dataset.images = 32;
  cfg.dataset.seed = 77;
  cfg.seed = 77;
  cfg.dimd.replication = 2;
  cfg.checkpoint_dir = ckpt_dir;
  return cfg;
}

TEST(ClusterManager, PreemptResumeIsBitIdenticalToUninterruptedRun) {
  const std::string dir = testing::TempDir() + "dct_sched_preempt";
  const std::string ref_dir = testing::TempDir() + "dct_sched_preempt_ref";
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(ref_dir);

  constexpr std::int64_t kIters = 500;
  ClusterConfig cfg;
  cfg.sched.ranks = 4;
  cfg.job_template = tiny_template(dir);

  // The victim owns the whole 4-rank cluster; a production burst
  // arrives, evicts it mid-run (checkpoint + requeue), finishes, and
  // the victim resumes from its manifest to completion.
  std::vector<JobSpec> trace;
  trace.push_back(spec("victim", Priority::kBatch, 4, 4, kIters, 0.0));
  trace.push_back(spec("burst", Priority::kProduction, 4, 4, 40, 0.05));
  ClusterManager mgr(cfg, std::move(trace));
  mgr.run();

  const auto s = mgr.core().summary();
  EXPECT_EQ(s.finished, 2);
  EXPECT_EQ(s.cancelled, 0);
  ASSERT_GE(s.preemptions, 1);
  EXPECT_EQ(mgr.core().query("victim")->preemptions, 1);
  mgr.core().check_conservation();

  // The event log must show the victim re-placed with resume.
  bool resumed = false;
  for (const auto& ev : mgr.core().events()) {
    if (ev.kind == SchedEvent::Kind::kPlace && ev.job == "victim" &&
        ev.detail == "resume") {
      resumed = true;
    }
  }
  EXPECT_TRUE(resumed);

  // Reference: the same job, same derived seed, never interrupted.
  // job_cfg derives seed = template.seed + 1009 * (job_index + 1) and
  // the victim is trace index 0.
  trainer::TrainerConfig ref = tiny_template(ref_dir);
  ref.job_id = "victim";
  ref.seed = ref.seed + 1009;
  simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer t(comm, ref);
    for (std::int64_t i = 0; i < kIters; ++i) t.step();
    t.save_checkpoint();
  });

  // The preempted-and-resumed victim's final checkpoint must be
  // byte-for-byte the uninterrupted run's.
  for (int r = 0; r < 4; ++r) {
    const auto got = slurp(trainer::rank_checkpoint_path(
        dir + "/victim", static_cast<std::uint64_t>(kIters), r));
    const auto want = slurp(trainer::rank_checkpoint_path(
        ref_dir + "/victim", static_cast<std::uint64_t>(kIters), r));
    ASSERT_FALSE(want.empty());
    EXPECT_TRUE(got == want) << "rank " << r << " checkpoint differs";
  }

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(ref_dir);
}

// ---- end-to-end: elastic cede → preempt → resume → grow ---------------

TEST(ClusterManager, ElasticSharingFullCycle) {
  const std::string dir = testing::TempDir() + "dct_sched_elastic";
  std::filesystem::remove_all(dir);

  ClusterConfig cfg;
  cfg.sched.ranks = 8;
  cfg.job_template = tiny_template(dir);

  // stretchy runs at 4 of 8 ranks; filler holds the other 4. The
  // 5-rank production burst needs one cede from stretchy plus the
  // eviction of filler; after the burst drains, filler resumes and the
  // empty queue hands the leftover rank back to stretchy (grow).
  std::vector<JobSpec> trace;
  trace.push_back(spec("stretchy", Priority::kStandard, 2, 4, 1500, 0.0));
  trace.push_back(spec("filler", Priority::kBatch, 4, 4, 80, 0.0));
  trace.push_back(spec("burst", Priority::kProduction, 5, 5, 10, 0.25));
  ClusterManager mgr(cfg, std::move(trace));
  mgr.run();

  const auto s = mgr.core().summary();
  EXPECT_EQ(s.submitted, 3);
  EXPECT_EQ(s.finished, 3);
  EXPECT_EQ(s.cancelled, 0);
  EXPECT_GE(s.preemptions, 1);
  EXPECT_GE(s.shrinks, 1);
  EXPECT_GE(s.grows, 1);
  EXPECT_EQ(mgr.core().free_ranks(), 8);
  mgr.core().check_conservation();
}

// ---- tenant checkpoint namespacing ------------------------------------

TEST(TenantCheckpoint, ResumeRejectsForeignJobDirectory) {
  const std::string dir = testing::TempDir() + "dct_sched_tenant";
  std::filesystem::remove_all(dir);

  trainer::TrainerConfig cfg = tiny_template(dir);
  cfg.job_id = "alice";
  simmpi::Runtime::execute(1, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer t(comm, cfg);
    t.step();
    t.save_checkpoint();
  });
  // Checkpoints landed in the job's namespace, not the shared root.
  EXPECT_TRUE(std::filesystem::exists(dir + "/alice/MANIFEST"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/MANIFEST"));

  // An *untagged* trainer pointed straight at alice's namespaced
  // directory: the manifest names its owner, so resume refuses loudly
  // instead of adopting a foreign model.
  simmpi::Runtime::execute(1, [&](simmpi::Communicator& comm) {
    trainer::TrainerConfig thief = cfg;
    thief.job_id = "";
    thief.checkpoint_dir = dir + "/alice";
    trainer::DistributedTrainer t(comm, thief);
    EXPECT_THROW(t.resume(), CheckError);
  });

  // A differently-named tenant sees only its own (empty) namespace.
  simmpi::Runtime::execute(1, [&](simmpi::Communicator& comm) {
    trainer::TrainerConfig other = cfg;
    other.job_id = "mallory";
    trainer::DistributedTrainer t(comm, other);
    EXPECT_FALSE(t.resume());
  });

  // The rightful owner resumes fine.
  simmpi::Runtime::execute(1, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer t(comm, cfg);
    EXPECT_TRUE(t.resume());
    EXPECT_EQ(t.iteration(), 1u);
  });

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dct::sched
