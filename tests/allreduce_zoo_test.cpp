// Bit-exactness suite for the topology-aware collective zoo
// (DESIGN.md §17): hierarchical, halving_doubling, and torus must
// produce results bit-identical to `naive` for identical inputs — any
// world size (power-of-two or not, rectangular torus or not), any
// payload size, any knob value. This is what lets the autotuner swap
// algorithms mid-run without perturbing training numerics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "allreduce/algorithm.hpp"
#include "allreduce/algorithms_impl.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace dct::allreduce {
namespace {

/// Deterministic per-rank payload with enough exponent spread that any
/// reassociation of the float sums would flip low-order bits.
std::vector<float> rank_payload(int rank, std::size_t n) {
  Rng rng(4242 + static_cast<std::uint64_t>(rank));
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float mag = rng.next_float() * 2.0f - 1.0f;
    const int exp = static_cast<int>(rng.next_u64() % 24) - 12;
    v[i] = std::ldexp(mag, exp);
  }
  return v;
}

/// Runs `algo_name` and `naive` on identical inputs across `p` ranks and
/// asserts every rank's output is bit-identical between the two.
void expect_bit_identical_to_naive(const std::string& algo_name, int p,
                                   std::size_t n) {
  auto algo = make_algorithm(algo_name);
  auto naive = make_algorithm("naive");
  std::vector<std::vector<float>> got(static_cast<std::size_t>(p));
  std::vector<std::vector<float>> want(static_cast<std::size_t>(p));
  simmpi::Runtime::execute(p, [&](simmpi::Communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    auto a = rank_payload(comm.rank(), n);
    auto b = a;
    RankTraffic traffic;
    algo->run(comm, std::span<float>(a), &traffic);
    naive->run(comm, std::span<float>(b));
    got[r] = std::move(a);
    want[r] = std::move(b);
    if (comm.size() > 1 && n > 0) {
      // Every rank moves bytes in every zoo algorithm (no idle rank).
      EXPECT_GT(traffic.bytes_sent, 0u)
          << algo_name << " p=" << p << " rank=" << comm.rank();
    }
  });
  for (int r = 0; r < p; ++r) {
    const auto& g = got[static_cast<std::size_t>(r)];
    const auto& w = want[static_cast<std::size_t>(r)];
    ASSERT_EQ(g.size(), w.size());
    ASSERT_EQ(0, std::memcmp(g.data(), w.data(), g.size() * sizeof(float)))
        << algo_name << " diverges from naive at p=" << p << " n=" << n
        << " rank=" << r;
  }
}

TEST(AllreduceZoo, HalvingDoublingBitIdenticalToNaive) {
  for (int p = 2; p <= 16; ++p) {
    for (std::size_t n : {std::size_t{1}, std::size_t{17},
                          std::size_t{1024}, std::size_t{4096 + 3}}) {
      expect_bit_identical_to_naive("halving_doubling", p, n);
    }
  }
}

TEST(AllreduceZoo, HierarchicalBitIdenticalToNaive) {
  for (int p = 2; p <= 16; ++p) {
    for (const char* name : {"hierarchical", "hierarchical:2",
                             "hierarchical:8"}) {
      expect_bit_identical_to_naive(name, p, 1024 + 5);
    }
  }
}

TEST(AllreduceZoo, TorusBitIdenticalToNaive) {
  // Includes worlds that do not form a rectangle for the given column
  // count (e.g. p=7 on 2 columns → 3×2 grid + 1 tail rank) and column
  // counts exceeding the world size (clamped).
  for (int p = 2; p <= 16; ++p) {
    for (const char* name : {"torus", "torus:1", "torus:2", "torus:4",
                             "torus:8"}) {
      expect_bit_identical_to_naive(name, p, 1024 + 5);
    }
  }
}

TEST(AllreduceZoo, LargePayloadSpotCheck) {
  for (const char* name : {"halving_doubling", "hierarchical", "torus"}) {
    expect_bit_identical_to_naive(name, 12, 65536 + 7);
  }
}

TEST(AllreduceZoo, WorksOnSplitCommunicator) {
  simmpi::Runtime::execute(8, [](simmpi::Communicator& world) {
    auto sub = world.split(world.rank() % 2, world.rank());
    for (const char* name : {"halving_doubling", "hierarchical:2",
                             "torus:2"}) {
      auto algo = make_algorithm(name);
      std::vector<float> data(257, static_cast<float>(world.rank()));
      algo->run(sub, std::span<float>(data));
      const float expect = (world.rank() % 2 == 0) ? 12.0f : 16.0f;
      for (float v : data) ASSERT_EQ(v, expect);
    }
  });
}

TEST(AllreduceZoo, EmptyPayloadIsNoop) {
  for (const char* name : {"halving_doubling", "hierarchical", "torus"}) {
    auto algo = make_algorithm(name);
    simmpi::Runtime::execute(5, [&](simmpi::Communicator& comm) {
      std::vector<float> data;
      RankTraffic t;
      algo->run(comm, std::span<float>(data), &t);
      EXPECT_EQ(t.bytes_sent, 0u);
    });
  }
}

// --------------------------------------------------------- registry

TEST(AllreduceZoo, RegistryParsesParameterizedNames) {
  EXPECT_EQ(make_algorithm("hierarchical")->name(), "hierarchical");
  EXPECT_EQ(make_algorithm("hierarchical:8")->name(), "hierarchical:8");
  // Non-power-of-two group sizes round down.
  auto h6 = make_algorithm("hierarchical:6");
  EXPECT_EQ(h6->name(), "hierarchical");  // 6 → 4 (the default)
  EXPECT_EQ(make_algorithm("torus")->name(), "torus");
  EXPECT_EQ(make_algorithm("torus:4")->name(), "torus:4");
  EXPECT_EQ(make_algorithm("openmpi_default")->name(), "openmpi_default");
  auto om = make_algorithm("openmpi_default:262144");
  EXPECT_EQ(om->name(), "openmpi_default:262144");
  EXPECT_EQ(dynamic_cast<const OpenMpiDefaultAllreduce&>(*om).cutover_bytes(),
            262144u);
}

TEST(AllreduceZoo, CutoverParameterChangesDispatch) {
  // With a huge cutover even a large payload should take the naive
  // (reduce+bcast) path — visible through the traffic shape: naive's
  // interior ranks send exactly one full payload during the reduce.
  const std::size_t n = 32768;
  auto small_cut = make_algorithm("openmpi_default:1");
  auto big_cut = make_algorithm("openmpi_default:1073741824");
  simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
    std::vector<float> data(n, 1.0f);
    RankTraffic small_t, big_t;
    small_cut->run(comm, std::span<float>(data), &small_t);
    data.assign(n, 1.0f);
    big_cut->run(comm, std::span<float>(data), &big_t);
    if (comm.rank() == 3) {
      // Rank 3 under naive: one send (its partial), nothing else.
      EXPECT_EQ(big_t.messages_sent, 1u);
      // Under Rabenseifner it participates in every exchange round.
      EXPECT_GT(small_t.messages_sent, 1u);
    }
  });
}

TEST(AllreduceZoo, UnknownNameErrorListsKnownAlgorithms) {
  try {
    (void)make_algorithm("quantum_ring");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quantum_ring"), std::string::npos);
    EXPECT_NE(msg.find("halving_doubling"), std::string::npos);
    EXPECT_NE(msg.find("torus"), std::string::npos);
    EXPECT_NE(msg.find("multicolor"), std::string::npos);
  }
}

TEST(AllreduceZoo, ListAlgorithmsCoversRegistry) {
  const auto names = list_algorithms();
  EXPECT_GE(names.size(), 10u);
  // Every base spelling must be instantiable (strip the [param] hint).
  for (const auto& n : names) {
    const auto base = n.substr(0, n.find('['));
    EXPECT_NO_THROW((void)make_algorithm(base)) << base;
  }
}

}  // namespace
}  // namespace dct::allreduce
