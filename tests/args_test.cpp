// Tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "util/args.hpp"
#include "util/error.hpp"

namespace dct {
namespace {

ArgParser parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"dctrain"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SubcommandAndKeyValue) {
  const auto args = parse({"train", "--ranks", "4", "--allreduce=ring"});
  EXPECT_EQ(args.command(), "train");
  EXPECT_EQ(args.get_int("ranks", 0), 4);
  EXPECT_EQ(args.get("allreduce", ""), "ring");
}

TEST(Args, BareSwitchesAndDefaults) {
  const auto args = parse({"plan", "--baseline", "--nodes", "8"});
  EXPECT_TRUE(args.has("baseline"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("nodes", 0), 8);
  EXPECT_EQ(args.get_int("batch", 64), 64);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.1), 0.1);
}

TEST(Args, SwitchFollowedByOption) {
  // "--flag --key v": flag must not swallow the next option.
  const auto args = parse({"x", "--flag", "--key", "v"});
  EXPECT_EQ(args.get("flag", ""), "true");
  EXPECT_EQ(args.get("key", ""), "v");
}

TEST(Args, NumericValidation) {
  const auto args = parse({"x", "--n", "abc", "--f", "1.5"});
  EXPECT_THROW(args.get_int("n", 0), CheckError);
  EXPECT_DOUBLE_EQ(args.get_double("f", 0), 1.5);
}

TEST(Args, RejectsTwoPositionals) {
  EXPECT_THROW(parse({"a", "b"}), CheckError);
}

TEST(Args, TracksUnusedOptions) {
  const auto args = parse({"x", "--used", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("used", 0), 1);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, NoArguments) {
  const auto args = parse({});
  EXPECT_TRUE(args.command().empty());
  EXPECT_TRUE(args.unused().empty());
}

}  // namespace
}  // namespace dct
