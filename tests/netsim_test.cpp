// Tests for the network simulator: topology routing, flow fair-sharing
// physics, schedule builders, and the qualitative ordering the paper's
// Figure 5 depends on (multicolor > ring > OpenMPI default).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "netsim/anomaly.hpp"
#include "netsim/cluster.hpp"
#include "netsim/flow_sim.hpp"
#include "netsim/schedules.hpp"
#include "netsim/topology.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace dct::netsim {
namespace {

FatTree small_net(int hosts = 8, int rails = 1, double gbps = 80.0) {
  FatTree::Config cfg;
  cfg.hosts = hosts;
  cfg.hosts_per_leaf = 4;
  cfg.spines = 2;
  cfg.rails = rails;
  cfg.host_link_gbps = gbps;
  cfg.fabric_link_gbps = gbps;
  return FatTree(cfg);
}

TEST(Topology, RoutesAreHostUpFabricHostDown) {
  const auto net = small_net();
  // Same leaf (hosts 0 and 1): two hops, no fabric.
  EXPECT_EQ(net.route(0, 1, 0).size(), 2u);
  // Cross leaf (hosts 0 and 5): four hops.
  EXPECT_EQ(net.route(0, 5, 0).size(), 4u);
}

TEST(Topology, RoutesAreDeterministicPerSeed) {
  const auto net = small_net(8, 2);
  EXPECT_EQ(net.route(0, 5, 42), net.route(0, 5, 42));
}

TEST(Topology, SeedsSpreadAcrossRails) {
  const auto net = small_net(8, 2);
  bool differs = false;
  const auto base = net.route(0, 5, 0);
  for (std::uint64_t seed = 1; seed < 32 && !differs; ++seed) {
    differs = (net.route(0, 5, seed) != base);
  }
  EXPECT_TRUE(differs);
}

TEST(Topology, MappingRelocatesRanks) {
  FatTree::Config cfg;
  cfg.hosts = 4;
  cfg.hosts_per_leaf = 2;
  cfg.spines = 1;
  cfg.rails = 1;
  cfg.mapping = {3, 2, 1, 0};
  const FatTree net(cfg);
  // Ranks 0 and 1 live on hosts 3 and 2 → same leaf → 2 hops.
  EXPECT_EQ(net.route(0, 1, 0).size(), 2u);
  // Ranks 0 and 3 live on hosts 3 and 0 → cross leaf → 4 hops.
  EXPECT_EQ(net.route(0, 3, 0).size(), 4u);
}

TEST(Topology, TorusRoutesAreDimensionOrder) {
  Torus2D::Config cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  const Torus2D net(cfg);
  EXPECT_EQ(net.hosts(), 16);
  EXPECT_EQ(net.kind(), "torus");
  EXPECT_EQ(net.locality_group(), 4);
  // One hop to a column neighbour, wrap included: (0,0) → (0,3) is one
  // hop the short way around.
  EXPECT_EQ(net.route(0, 1, 0).size(), 1u);
  EXPECT_EQ(net.route(0, 3, 0).size(), 1u);
  // (0,0) → (2,2): 2 column hops + 2 row hops.
  EXPECT_EQ(net.route(0, 10, 0).size(), 4u);
  // Deterministic per seed; the half-way tie can differ across seeds.
  EXPECT_EQ(net.route(0, 10, 7), net.route(0, 10, 7));
  // Route must stay loop-free: no repeated links.
  const auto r = net.route(5, 12, 3);
  std::set<int> unique_links(r.begin(), r.end());
  EXPECT_EQ(unique_links.size(), r.size());
}

TEST(Topology, DragonflyRoutesUseOneGlobalHop) {
  Dragonfly::Config cfg;
  cfg.groups = 4;
  cfg.hosts_per_group = 4;
  const Dragonfly net(cfg);
  EXPECT_EQ(net.hosts(), 16);
  // Intra-group: up + down.
  EXPECT_EQ(net.route(0, 1, 0).size(), 2u);
  // Inter-group: up + global + down.
  EXPECT_EQ(net.route(0, 5, 0).size(), 3u);
  // The middle hop of an inter-group route is a global (fabric) link.
  const auto r = net.route(0, 5, 0);
  EXPECT_TRUE(net.is_host_link(r.front()));
  EXPECT_FALSE(net.is_host_link(r[1]));
  EXPECT_TRUE(net.is_host_link(r.back()));
}

TEST(Topology, OversubscribedFatTreeStarvesTheCore) {
  FatTree::Config cfg;
  cfg.hosts = 8;
  cfg.hosts_per_leaf = 4;
  cfg.spines = 2;
  cfg.rails = 1;
  cfg.oversubscription = 4.0;
  const FatTree net(cfg);
  // Host links keep full capacity; fabric links run at 1/4.
  double host_bw = 0.0, fabric_bw = 0.0;
  for (int l = 0; l < net.num_links(); ++l) {
    if (net.is_host_link(l)) {
      host_bw = net.link(l).bandwidth_Bps;
    } else {
      fabric_bw = net.link(l).bandwidth_Bps;
    }
  }
  EXPECT_NEAR(fabric_bw, host_bw / 4.0, 1.0);
}

TEST(Topology, FactoryBuildsEveryKind) {
  for (const auto& kind : topology_kinds()) {
    TopologyConfig cfg;
    cfg.kind = kind;
    cfg.hosts = 16;
    const auto net = make_topology(cfg);
    ASSERT_NE(net, nullptr) << kind;
    EXPECT_EQ(net->hosts(), 16) << kind;
    EXPECT_GT(net->num_links(), 0) << kind;
    EXPECT_GT(net->locality_group(), 0) << kind;
    // Every pair routes, and route links are in range.
    const auto r = net->route(0, 13, 1);
    EXPECT_FALSE(r.empty()) << kind;
    for (int id : r) {
      ASSERT_GE(id, 0);
      ASSERT_LT(id, net->num_links());
    }
  }
  TopologyConfig bad;
  bad.kind = "moebius";
  EXPECT_THROW((void)make_topology(bad), CheckError);
}

TEST(Topology, SchedulesSimulateOnEveryFabric) {
  // The zoo algorithms must price on every fabric kind — the crossover
  // tables in `dctrain plan --topology` depend on it.
  for (const auto& kind : topology_kinds()) {
    TopologyConfig tc;
    tc.kind = kind;
    tc.hosts = 16;
    const auto net = make_topology(tc);
    AllreduceParams params;
    params.payload_bytes = 1 << 20;
    params.ranks = 16;
    for (const char* algo : {"naive", "halving_doubling", "hierarchical",
                             "torus", "bucket_ring", "multicolor"}) {
      const auto schedule = allreduce_schedule(algo, params);
      const auto result = simulate(*net, schedule, sim_options_for(algo));
      EXPECT_GT(result.makespan_s, 0.0) << kind << " " << algo;
      EXPECT_LE(result.max_link_utilization, 1.0 + 1e-6) << kind << " " << algo;
    }
  }
}

TEST(FlowSim, SingleFlowAtLineRate) {
  const auto net = small_net(8, 1, 80.0);  // 10 GB/s per link
  CommSchedule s;
  s.add_transfer(0, 1, 1'000'000'000);  // 1 GB, same leaf
  const auto r = simulate(net, s);
  EXPECT_NEAR(r.makespan_s, 0.1, 0.001);  // 1 GB / 10 GB/s
  EXPECT_EQ(r.flows, 1u);
}

TEST(FlowSim, TwoFlowsShareALink) {
  const auto net = small_net(8, 1, 80.0);
  CommSchedule s;
  // Both flows leave host 0 → share its single 10 GB/s uplink.
  s.add_transfer(0, 1, 500'000'000);
  s.add_transfer(0, 2, 500'000'000);
  const auto r = simulate(net, s);
  EXPECT_NEAR(r.makespan_s, 0.1, 0.001);  // 1 GB total through 10 GB/s
}

TEST(FlowSim, DisjointFlowsRunConcurrently) {
  const auto net = small_net(8, 1, 80.0);
  CommSchedule s;
  s.add_transfer(0, 1, 500'000'000);
  s.add_transfer(2, 3, 500'000'000);
  const auto r = simulate(net, s);
  EXPECT_NEAR(r.makespan_s, 0.05, 0.001);
}

TEST(FlowSim, DependenciesSerialize) {
  const auto net = small_net(8, 1, 80.0);
  CommSchedule s;
  const int a = s.add_transfer(0, 1, 500'000'000);
  s.add_transfer(1, 2, 500'000'000, {a});
  const auto r = simulate(net, s);
  EXPECT_NEAR(r.makespan_s, 0.1, 0.001);
}

TEST(FlowSim, ComputeDelaysFlowStart) {
  const auto net = small_net(8, 1, 80.0);
  CommSchedule s;
  const int c = s.add_compute(0, 0.25);
  s.add_transfer(0, 1, 500'000'000, {c});
  const auto r = simulate(net, s);
  EXPECT_NEAR(r.makespan_s, 0.3, 0.001);
}

TEST(FlowSim, FairnessIsMaxMin) {
  // Flow A crosses a contended link; flow B shares only part of the
  // path. Max-min: both bottlenecked flows get half, the free flow gets
  // the leftover.
  const auto net = small_net(8, 1, 80.0);
  CommSchedule s;
  s.add_transfer(0, 2, 1'000'000'000);  // shares host-0 uplink
  s.add_transfer(0, 3, 1'000'000'000);  // shares host-0 uplink
  s.add_transfer(1, 2, 1'000'000'000);  // contends at host-2 downlink
  const auto r = simulate(net, s);
  // Host-0 uplink carries 2 GB at 10 GB/s → those two finish ≥ 0.2 s.
  // The 1→2 flow shares host-2's downlink with flow (0→2): each gets
  // 5 GB/s while both active.
  EXPECT_GT(r.makespan_s, 0.19);
  EXPECT_LT(r.makespan_s, 0.35);
}

TEST(FlowSim, ZeroByteOpsAndEmptySchedules) {
  const auto net = small_net();
  CommSchedule empty;
  EXPECT_EQ(simulate(net, empty).makespan_s, 0.0);
  CommSchedule s;
  s.add_transfer(0, 1, 0);  // zero-byte signal costs only overhead
  const auto r = simulate(net, s);
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_LT(r.makespan_s, 1e-4);
}

TEST(FlowSim, ForwardOnlyDependenciesEnforced) {
  CommSchedule s;
  CommOp op;
  op.src = 0;
  op.dst = 1;
  op.bytes = 10;
  op.deps = {5};
  EXPECT_THROW(s.add(std::move(op)), dct::CheckError);
}

// ------------------------------------------------------------ anomaly

// A ring of equal same-size transfers: every host moves the same bytes
// through its own rail, so link utilizations are uniform — the ideal
// backdrop for planting one degraded cable.
CommSchedule ring_traffic(int hosts, std::uint64_t bytes = 100'000'000) {
  CommSchedule s;
  for (int r = 0; r < hosts; ++r) {
    s.add_transfer(r, (r + 1) % hosts, bytes);
  }
  return s;
}

TEST(Anomaly, FlagsDegradedHostUplink) {
  auto net = small_net(8, 1, 80.0);
  // Host 3's single uplink at 20% capacity: its flow drains 5x slower,
  // so over the stretched makespan that link runs hot while its healthy
  // peers idle after finishing early.
  const int bad = (3 * /*rails=*/1 + 0) * 2;  // host 3, rail 0, up
  net.scale_link(bad, 0.2);
  const auto result = simulate(net, ring_traffic(8));
  const auto slow = detect_slow_links(net, result);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow.front().link, bad);
  EXPECT_EQ(slow.front().name, "host3.rail0.up");
  EXPECT_GT(slow.front().z, 3.5);
  EXPECT_GT(slow.front().utilization, 0.5);
}

TEST(Anomaly, HealthyFabricStaysQuiet) {
  const auto net = small_net(8, 1, 80.0);
  const auto result = simulate(net, ring_traffic(8));
  EXPECT_TRUE(detect_slow_links(net, result).empty());
}

TEST(Anomaly, MismatchedResultIsRejected) {
  const auto net = small_net(8, 1, 80.0);
  SimResult bogus;  // empty link_utilization: wrong topology
  bogus.makespan_s = 1.0;
  EXPECT_THROW(detect_slow_links(net, bogus), dct::CheckError);
}

TEST(Topology, LinkNamesAndClasses) {
  const auto net = small_net(8, 1, 80.0);
  EXPECT_TRUE(net.is_host_link(0));
  EXPECT_EQ(net.link_name(0), "host0.rail0.up");
  EXPECT_EQ(net.link_name(1), "host0.rail0.down");
  const int fabric_base = 8 * 1 * 2;
  EXPECT_FALSE(net.is_host_link(fabric_base));
  EXPECT_EQ(net.link_name(fabric_base), "leaf0->spine0");
  EXPECT_EQ(net.link_name(fabric_base + 1), "spine0->leaf0");
}

// ------------------------------------------------------------ schedules

TEST(Schedules, ConserveBytes) {
  AllreduceParams p;
  p.payload_bytes = 16 << 20;
  p.ranks = 8;
  // Ring moves ~2·S·(p-1) bytes in total (reduce + broadcast chains).
  const auto ring = ring_allreduce_schedule(p);
  EXPECT_NEAR(static_cast<double>(ring.total_bytes()),
              2.0 * p.payload_bytes * (p.ranks - 1),
              static_cast<double>(p.payload_bytes) * 0.01);
  // Multicolor: every rank's payload climbs to a root once and the sum
  // descends once → also ~2·S·(p-1) in aggregate.
  const auto mc = multicolor_allreduce_schedule(p, 4);
  EXPECT_NEAR(static_cast<double>(mc.total_bytes()),
              2.0 * p.payload_bytes * (p.ranks - 1),
              static_cast<double>(p.payload_bytes) * 0.05);
  // Rabenseifner: 2·S·(pof2-1)/pof2 per rank → 2·S·(p-1) aggregate.
  const auto rh = recursive_halving_schedule(p);
  EXPECT_NEAR(static_cast<double>(rh.total_bytes()),
              2.0 * p.payload_bytes * (p.ranks - 1) / p.ranks * p.ranks,
              static_cast<double>(p.payload_bytes) * 0.30);
}

TEST(Schedules, RingTimeRespectsBandwidthLowerBound) {
  // The pipelined ring is limited by one link carrying the whole payload
  // twice (reduce in, broadcast out of the root's neighbour).
  ClusterConfig cfg;
  cfg.nodes = 16;
  const std::uint64_t payload = 64 << 20;
  const double t = allreduce_time_s(cfg, "ring", payload);
  const double link_bw = gbps_to_bytes_per_sec(cfg.rail_gbps);
  EXPECT_GE(t, 2.0 * static_cast<double>(payload) / link_bw * 0.99);
}

TEST(Schedules, TimesScaleWithPayload) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  for (const char* algo : {"ring", "multicolor", "recursive_halving",
                           "naive"}) {
    const double t1 = allreduce_time_s(cfg, algo, 8 << 20);
    const double t2 = allreduce_time_s(cfg, algo, 64 << 20);
    EXPECT_GT(t2, t1 * 3.0) << algo;  // ~linear in payload at this size
    EXPECT_LT(t2, t1 * 20.0) << algo;
  }
}

TEST(Schedules, Figure5OrderingHolds) {
  // The paper's Fig. 5 (16 nodes): multicolor beats ring beats the
  // OpenMPI default for large payloads.
  // Ring has a long latency chain, so it only overtakes the default above
  // a few tens of MB (the regime Fig. 5 reports); multicolor wins at
  // every size.
  ClusterConfig cfg;
  cfg.nodes = 16;
  const double t_mc_small = allreduce_time_s(cfg, "multicolor", 4 << 20);
  const double t_def_small =
      allreduce_time_s(cfg, "openmpi_default", 4 << 20);
  EXPECT_LT(t_mc_small, t_def_small);
  for (std::uint64_t payload : {std::uint64_t{64} << 20,
                                std::uint64_t{93} << 20}) {
    const double t_mc = allreduce_time_s(cfg, "multicolor", payload);
    const double t_ring = allreduce_time_s(cfg, "ring", payload);
    const double t_def = allreduce_time_s(cfg, "openmpi_default", payload);
    EXPECT_LT(t_mc, t_ring) << payload;
    EXPECT_LT(t_ring, t_def) << payload;
    // Fig. 5's gap: multicolor well ahead of the stock stack (the
    // 50–60 % *epoch*-time band is asserted at the trainer level, where
    // compute dilutes the communication saving).
    EXPECT_GT(t_def / t_mc, 3.0) << "payload " << payload;
    // And ring meaningfully better than default at large payloads.
    EXPECT_GT(t_def / t_ring, 1.5) << "payload " << payload;
  }
}

TEST(Schedules, MulticolorUsesBothRails) {
  // With 2 rails the color streams spread over both adapters; a 1-rail
  // cluster must be materially slower.
  ClusterConfig two;
  two.nodes = 16;
  ClusterConfig one = two;
  one.rails = 1;
  const std::uint64_t payload = 64 << 20;
  const double t2 = allreduce_time_s(two, "multicolor", payload);
  const double t1 = allreduce_time_s(one, "multicolor", payload);
  EXPECT_GT(t1, t2 * 1.15);
}

TEST(Schedules, AlltoallScalesWithPairBytes) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  const double t1 = alltoall_time_s(cfg, 1 << 20);
  const double t2 = alltoall_time_s(cfg, 4 << 20);
  EXPECT_GT(t2, t1 * 2.0);
  EXPECT_LT(t2, t1 * 8.0);
}

TEST(Schedules, SingleNodeIsFree) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  EXPECT_EQ(allreduce_time_s(cfg, "multicolor", 1 << 20), 0.0);
  EXPECT_EQ(alltoall_time_s(cfg, 1 << 20), 0.0);
}

}  // namespace
}  // namespace dct::netsim
