// Tests for the DIMD data module: synthetic determinism, codec
// round-trip properties, record-file I/O, and the three DIMD APIs —
// partitioned load coverage, random batch assembly, and the Algorithm-2
// shuffle (multiset preservation, segmentation, group scoping,
// randomisation quality).
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <numeric>
#include <set>

#include "data/codec.hpp"
#include "data/dimd.hpp"
#include "data/record_file.hpp"
#include "data/synthetic.hpp"
#include "simmpi/runtime.hpp"
#include "util/stats.hpp"

namespace dct::data {
namespace {

DatasetDef tiny_def(std::int64_t images = 64, std::int32_t classes = 4) {
  DatasetDef def;
  def.seed = 7;
  def.images = images;
  def.classes = classes;
  def.image = ImageDef{3, 8, 8};
  return def;
}

TEST(Synthetic, DeterministicPerIndex) {
  SyntheticImageGenerator gen(tiny_def());
  const RawImage a = gen.generate(5);
  const RawImage b = gen.generate(5);
  EXPECT_EQ(a.pixels, b.pixels);
  EXPECT_EQ(a.label, b.label);
  const RawImage c = gen.generate(6);
  EXPECT_NE(a.pixels, c.pixels);
}

TEST(Synthetic, LabelsCycleClasses) {
  SyntheticImageGenerator gen(tiny_def(10, 3));
  EXPECT_EQ(gen.label_of(0), 0);
  EXPECT_EQ(gen.label_of(4), 1);
  EXPECT_EQ(gen.generate(5).label, 2);
}

TEST(Synthetic, PixelToFloatNormalises) {
  std::vector<std::uint8_t> px{0, 128, 255};
  std::vector<float> out(3);
  pixels_to_float(px, out);
  EXPECT_NEAR(out[0], -1.0f, 1e-6);
  EXPECT_NEAR(out[2], 1.0f, 1e-6);
  EXPECT_NEAR(out[1], 0.0f, 0.01);
}

TEST(Codec, RoundTripsRandomBytes) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> raw(
        static_cast<std::size_t>(rng.next_below(2000)));
    for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto blob = codec_encode(raw);
    EXPECT_EQ(codec_decoded_size(blob), raw.size());
    EXPECT_EQ(codec_decode(blob), raw);
  }
}

TEST(Codec, RoundTripsSyntheticImages) {
  SyntheticImageGenerator gen(tiny_def());
  for (std::int64_t i = 0; i < 16; ++i) {
    const auto img = gen.generate(i);
    EXPECT_EQ(codec_decode(codec_encode(img.pixels)), img.pixels);
  }
}

TEST(Codec, CompressesSmoothData) {
  // A constant image is nearly all zero-runs.
  std::vector<std::uint8_t> flat(1000, 42);
  const auto blob = codec_encode(flat);
  EXPECT_LT(blob.size(), 50u);
}

TEST(Codec, EdgeCases) {
  EXPECT_EQ(codec_decode(codec_encode({})), std::vector<std::uint8_t>{});
  EXPECT_EQ(codec_decode(codec_encode({0})), std::vector<std::uint8_t>{0});
  std::vector<std::uint8_t> long_run(1000, 0);
  EXPECT_EQ(codec_decode(codec_encode(long_run)), long_run);
  // Alternating extremes exercise delta wrap-around.
  std::vector<std::uint8_t> extremes;
  for (int i = 0; i < 100; ++i) extremes.push_back(i % 2 ? 255 : 0);
  EXPECT_EQ(codec_decode(codec_encode(extremes)), extremes);
}

TEST(Codec, RejectsCorruptBlobs) {
  EXPECT_THROW(codec_decode({1, 2}), CheckError);
  auto blob = codec_encode({1, 2, 3, 4, 5});
  blob.pop_back();
  EXPECT_THROW(codec_decode(blob), CheckError);
  auto blob2 = codec_encode({9, 9, 9});
  blob2.push_back(0x7);
  EXPECT_THROW(codec_decode(blob2), CheckError);
}

class RecordFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    blob_path_ = testing::TempDir() + "dct_test_blob.bin";
    index_path_ = testing::TempDir() + "dct_test_index.bin";
  }
  void TearDown() override {
    std::remove(blob_path_.c_str());
    std::remove(index_path_.c_str());
  }
  std::string blob_path_, index_path_;
};

TEST_F(RecordFileTest, WriteThenRandomAccess) {
  const auto def = tiny_def(32);
  const auto bytes = build_synthetic_record_file(def, blob_path_, index_path_);
  EXPECT_GT(bytes, 0u);
  RecordFile file(blob_path_, index_path_);
  EXPECT_EQ(file.size(), 32u);
  EXPECT_EQ(file.total_blob_bytes(), bytes);
  SyntheticImageGenerator gen(def);
  for (std::uint64_t i : {0ULL, 7ULL, 31ULL}) {
    const auto rec = file.read_record(i);
    const auto img = gen.generate(static_cast<std::int64_t>(i));
    EXPECT_EQ(codec_decode(rec), img.pixels);
    EXPECT_EQ(file.entry(i).label, img.label);
  }
}

TEST_F(RecordFileTest, BulkRangeEqualsRandomAccess) {
  build_synthetic_record_file(tiny_def(20), blob_path_, index_path_);
  RecordFile file(blob_path_, index_path_);
  auto bulk = file.read_range(5, 10);
  ASSERT_EQ(bulk.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(bulk[static_cast<std::size_t>(i)], file.read_record(5 + i));
  }
  EXPECT_TRUE(file.read_range(3, 0).empty());
}

TEST_F(RecordFileTest, RejectsBadPathsAndMagic) {
  EXPECT_THROW(RecordFile("/nonexistent/blob", "/nonexistent/idx"),
               CheckError);
  // Valid blob, corrupted index magic.
  build_synthetic_record_file(tiny_def(4), blob_path_, index_path_);
  {
    std::ofstream idx(index_path_, std::ios::binary | std::ios::trunc);
    idx << "NOTMAGIC garbage";
  }
  EXPECT_THROW(RecordFile(blob_path_, index_path_), CheckError);
}

// --------------------------------------------------------------- DIMD

TEST(Dimd, PartitionedLoadCoversDatasetOnce) {
  const auto def = tiny_def(61);  // deliberately not divisible by ranks
  simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
    DimdStore store(comm, DimdConfig{1, 4 << 20});
    store.load_partition(SyntheticImageGenerator(def));
    EXPECT_EQ(store.group_count(), 61u);
    // Slices are near-equal.
    EXPECT_GE(store.local_count(), 15u);
    EXPECT_LE(store.local_count(), 16u);
  });
}

TEST(Dimd, EachGroupOwnsAFullCopy) {
  const auto def = tiny_def(48);
  simmpi::Runtime::execute(8, [&](simmpi::Communicator& comm) {
    DimdStore store(comm, DimdConfig{2, 4 << 20});
    store.load_partition(SyntheticImageGenerator(def));
    EXPECT_EQ(store.group_size(), 4);
    EXPECT_EQ(store.group_count(), 48u);  // per group
    EXPECT_EQ(store.group_id(), comm.rank() / 4);
  });
}

TEST(Dimd, GroupCountMustDivide) {
  simmpi::Runtime rt(4);
  EXPECT_THROW(
      rt.run([&](simmpi::Communicator& comm) {
        DimdStore store(comm, DimdConfig{3, 1 << 20});
      }),
      CheckError);
}

TEST(Dimd, RandomBatchShapesAndLabels) {
  const auto def = tiny_def(40, 5);
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    DimdStore store(comm, DimdConfig{1, 4 << 20});
    store.load_partition(SyntheticImageGenerator(def));
    Rng rng(comm.rank() + 1);
    const auto batch = store.random_batch(6, def.image, rng);
    EXPECT_EQ(batch.images.shape(),
              (std::vector<std::int64_t>{6, 3, 8, 8}));
    EXPECT_EQ(batch.labels.size(), 6u);
    for (auto lbl : batch.labels) {
      EXPECT_GE(lbl, 0);
      EXPECT_LT(lbl, 5);
    }
    // Pixels are normalised.
    for (std::int64_t i = 0; i < batch.images.numel(); ++i) {
      ASSERT_GE(batch.images[i], -1.0f);
      ASSERT_LE(batch.images[i], 1.0f);
    }
  });
}

TEST(Dimd, ShufflePreservesGlobalMultiset) {
  const auto def = tiny_def(97, 7);
  for (int ranks : {2, 4}) {
    simmpi::Runtime::execute(ranks, [&](simmpi::Communicator& comm) {
      DimdStore store(comm, DimdConfig{1, 1 << 12});
      store.load_partition(SyntheticImageGenerator(def));
      const auto before = store.group_checksum();
      const auto count_before = store.group_count();
      Rng rng(1000 + comm.rank());
      store.shuffle(rng);
      EXPECT_EQ(store.group_checksum(), before);
      EXPECT_EQ(store.group_count(), count_before);
      // And again — shuffles compose.
      store.shuffle(rng);
      EXPECT_EQ(store.group_checksum(), before);
    });
  }
}

TEST(Dimd, ShuffleSegmentsRespectByteBound) {
  const auto def = tiny_def(64);
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    DimdStore store(comm, DimdConfig{1, /*max_segment_bytes=*/256});
    store.load_partition(SyntheticImageGenerator(def));
    Rng rng(5 + comm.rank());
    store.shuffle(rng);
    // With a 256-byte bound and 32 records of ~100+ bytes, the exchange
    // must have used many segments (Algorithm 2's m > 1).
    EXPECT_GT(store.last_shuffle_segments(), 4u);
  });
}

TEST(Dimd, ShuffleStaysWithinGroups) {
  // Two groups with distinguishable datasets: after shuffling, a rank
  // must hold only records from its own group's dataset.
  const auto def_a = tiny_def(24);
  simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
    DimdStore store(comm, DimdConfig{2, 1 << 20});
    // Group 0 loads dataset A; group 1 loads a shifted dataset.
    DatasetDef def = def_a;
    def.seed = store.group_id() == 0 ? 7 : 999;
    store.load_partition(SyntheticImageGenerator(def));
    const auto checksum_before = store.group_checksum();
    Rng rng(comm.rank() * 17 + 3);
    store.shuffle(rng);
    EXPECT_EQ(store.group_checksum(), checksum_before);
  });
}

TEST(Dimd, ShuffleActuallyMovesRecords) {
  const auto def = tiny_def(128);
  simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
    DimdStore store(comm, DimdConfig{1, 4 << 20});
    store.load_partition(SyntheticImageGenerator(def));
    // Remember my original blobs.
    std::set<std::vector<std::uint8_t>> original;
    for (std::size_t i = 0; i < store.local_count(); ++i) {
      original.insert(store.item(i).blob);
    }
    Rng rng(31 + comm.rank());
    const auto sent = store.shuffle(rng);
    EXPECT_GT(sent, 0u);
    std::size_t still_mine = 0;
    for (std::size_t i = 0; i < store.local_count(); ++i) {
      still_mine += original.count(store.item(i).blob);
    }
    // Expect ≈ 1/4 retention, certainly below 3/4.
    EXPECT_LT(static_cast<double>(still_mine),
              0.75 * static_cast<double>(store.local_count()));
  });
}

TEST(Dimd, RepeatedShufflesBalanceLoad) {
  // Destination sampling is uniform, so local counts stay near N/P.
  const auto def = tiny_def(400);
  simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
    DimdStore store(comm, DimdConfig{1, 4 << 20});
    store.load_partition(SyntheticImageGenerator(def));
    Rng rng(77 + comm.rank());
    for (int round = 0; round < 3; ++round) {
      store.shuffle(rng);
      EXPECT_GT(store.local_count(), 55u);   // E = 100
      EXPECT_LT(store.local_count(), 160u);
      EXPECT_EQ(store.group_count(), 400u);
    }
  });
}

TEST(Dimd, ShuffleImprovesBatchClassCoverage) {
  // The paper's motivation for the shuffle: with a partitioned dataset,
  // batches drawn locally only cover the classes the partition holds;
  // after shuffles, local class entropy approaches the global value.
  DatasetDef def = tiny_def(240, 8);
  simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
    DimdStore store(comm, DimdConfig{1, 4 << 20});
    // Adversarial layout: sort labels into contiguous runs so each
    // partition initially sees only 2 of the 8 classes. We emulate this
    // by loading, then measuring entropy pre/post shuffle.
    store.load_partition(SyntheticImageGenerator(def));
    // Labels cycle in the synthetic set, so engineer the skew: keep only
    // records with label in my slice's class pair.
    // (Coverage improvement is still measurable via entropy of batch
    // labels before/after shuffle when sampling is local.)
    Rng rng(8 + comm.rank());
    auto entropy_of_local = [&] {
      std::vector<std::size_t> counts(8, 0);
      for (std::size_t i = 0; i < store.local_count(); ++i) {
        ++counts[static_cast<std::size_t>(store.item(i).label)];
      }
      return entropy_bits(counts);
    };
    const double before = entropy_of_local();
    store.shuffle(rng);
    const double after = entropy_of_local();
    // Cycling labels are already balanced; shuffle must keep entropy
    // high (≥ before − noise), never collapse it.
    EXPECT_GT(after, before - 0.35);
  });
}

}  // namespace
}  // namespace dct::data
