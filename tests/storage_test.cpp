// Tests for the storage module: filesystem model physics, donkey-pool
// functional loading, and the random-vs-bulk asymmetry that motivates
// DIMD (paper §4.1).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <stdexcept>

#include "data/codec.hpp"
#include "storage/donkey_pool.hpp"
#include "storage/prefetcher.hpp"

namespace dct::storage {
namespace {

TEST(SimFs, StreamBandwidthCappedByAggregate) {
  SimFilesystem fs(SimFsConfig{1e-3, 400e6, 2e9});
  EXPECT_DOUBLE_EQ(fs.effective_stream_bw(1), 400e6);
  EXPECT_DOUBLE_EQ(fs.effective_stream_bw(4), 400e6);   // 2e9/4 = 500e6 > 400e6
  EXPECT_DOUBLE_EQ(fs.effective_stream_bw(10), 200e6);  // aggregate bound
}

TEST(SimFs, RandomReadDominatedByLatencyForSmallFiles) {
  SimFilesystem fs(SimFsConfig{2.5e-3, 400e6, 3e9});
  // 60 KB image: transfer 0.15 ms ≪ 2.5 ms seek.
  const double t = fs.random_read_time(60'000, 1);
  EXPECT_GT(t, 2.5e-3);
  EXPECT_LT(t, 2.8e-3);
}

TEST(SimFs, BulkReadAmortisesLatency) {
  SimFilesystem fs(SimFsConfig{2.5e-3, 400e6, 3e9});
  const std::uint64_t partition = 2ULL << 30;  // 2 GiB slice
  const double bulk = fs.sequential_read_time(partition, 1);
  // Per-image random loading of the same bytes is far slower.
  const std::uint64_t image = 60'000;
  const double random_total =
      fs.random_read_time(image, 1) * (partition / image);
  EXPECT_GT(random_total, 10.0 * bulk);
}

TEST(Donkey, AnalyticThroughputShapes) {
  SimFilesystem fs;
  const std::uint64_t img = 60'000;
  // More donkey threads → more throughput, until the array saturates.
  const double t1 = donkey_images_per_second(fs, img, 1, 1);
  const double t8 = donkey_images_per_second(fs, img, 8, 1);
  EXPECT_GT(t8, 3.0 * t1);
  // More nodes share the array: per-node rate must fall once saturated.
  const double one_node = donkey_images_per_second(fs, img, 16, 1);
  const double many_nodes = donkey_images_per_second(fs, img, 16, 32);
  EXPECT_LT(many_nodes, one_node);
}

TEST(Donkey, CannotFeedFourP100s) {
  // The paper's observation: the donkey pipeline cannot sustain the
  // ≈800 img/s four P100s consume per node (ResNet-50).
  SimFilesystem fs;
  const double rate = donkey_images_per_second(fs, 60'000, 8, 32);
  EXPECT_LT(rate, 800.0);
}

class DonkeyPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    blob_ = testing::TempDir() + "dct_donkey_blob.bin";
    index_ = testing::TempDir() + "dct_donkey_index.bin";
    def_.seed = 3;
    def_.images = 50;
    def_.classes = 5;
    def_.image = data::ImageDef{3, 8, 8};
    data::build_synthetic_record_file(def_, blob_, index_);
  }
  void TearDown() override {
    std::remove(blob_.c_str());
    std::remove(index_.c_str());
  }
  data::DatasetDef def_;
  std::string blob_, index_;
};

TEST_F(DonkeyPoolTest, LoadsDecodedBatches) {
  data::RecordFile file(blob_, index_);
  DonkeyPool pool(file, def_.image, 4);
  const auto batch = pool.load_batch(12, /*seed=*/99);
  EXPECT_EQ(batch.images.shape(), (std::vector<std::int64_t>{12, 3, 8, 8}));
  EXPECT_EQ(batch.labels.size(), 12u);
  for (auto l : batch.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 5);
  }
  // Deterministic in the seed.
  const auto again = pool.load_batch(12, 99);
  EXPECT_TRUE(batch.images.equals(again.images));
  EXPECT_EQ(batch.labels, again.labels);
  // Different seed differs.
  const auto other = pool.load_batch(12, 100);
  EXPECT_FALSE(batch.images.equals(other.images));
}

TEST_F(DonkeyPoolTest, ConcurrentBatchesAreConsistent) {
  data::RecordFile file(blob_, index_);
  DonkeyPool pool(file, def_.image, 4);
  std::vector<std::future<LoadedBatch>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(pool.submit_batch(6, static_cast<std::uint64_t>(i)));
  }
  data::SyntheticImageGenerator gen(def_);
  for (auto& f : futs) {
    const auto b = f.get();
    EXPECT_EQ(b.images.dim(0), 6);
    for (std::int64_t i = 0; i < b.images.numel(); ++i) {
      ASSERT_GE(b.images[i], -1.0f);
      ASSERT_LE(b.images[i], 1.0f);
    }
  }
}

TEST(BatchPrefetcher, PropagatesLoaderExceptionsInIssueOrder) {
  // seq 0 and 3+ succeed, seq 1 throws synchronously while being
  // issued, seq 2 throws on the worker thread. The consumer must see
  // both failures from next(), at the failed request's position.
  const auto ok = [] {
    return std::async(std::launch::deferred, [] { return LoadedBatch{}; });
  };
  BatchPrefetcher pf(
      [&](std::uint64_t seq) -> std::future<LoadedBatch> {
        if (seq == 1) throw std::runtime_error("sync boom");
        if (seq == 2) {
          return std::async(std::launch::async,
                            []() -> LoadedBatch {
                              throw std::runtime_error("async boom");
                            });
        }
        return ok();
      },
      /*depth=*/2);
  EXPECT_NO_THROW(pf.next());  // seq 0
  try {
    pf.next();  // seq 1: the synchronous issue failure
    FAIL() << "expected sync loader failure to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sync boom");
  }
  try {
    pf.next();  // seq 2: the worker-thread failure
    FAIL() << "expected async loader failure to surface";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "async boom");
  }
  // The window recovers: later requests still come through.
  EXPECT_NO_THROW(pf.next());  // seq 3
  EXPECT_GE(pf.issued(), 4u);
}

}  // namespace
}  // namespace dct::storage
