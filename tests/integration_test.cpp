// Cross-module integration scenarios exercising the whole stack the way
// the examples and benches do: record files on disk feeding DIMD feeding
// the distributed trainer, prefetched donkey loading, the full Algorithm
// 1 loop across every allreduce algorithm, and consistency between the
// functional layer and the model layer's bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/dctrain.hpp"

namespace dct {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    def_.seed = 41;
    def_.images = 240;
    def_.classes = 6;
    def_.image = data::ImageDef{3, 8, 8};
    blob_ = testing::TempDir() + "dct_integration_blob.bin";
    index_ = testing::TempDir() + "dct_integration_index.bin";
    data::build_synthetic_record_file(def_, blob_, index_);
  }
  void TearDown() override {
    std::remove(blob_.c_str());
    std::remove(index_.c_str());
  }
  data::DatasetDef def_;
  std::string blob_, index_;
};

TEST_F(PipelineTest, DimdFromDiskEqualsDimdFromGenerator) {
  // Loading a partition from the record file must produce exactly the
  // records the generator path produces (the file round-trips).
  simmpi::Runtime::execute(3, [&](simmpi::Communicator& comm) {
    data::RecordFile file(blob_, index_);
    data::DimdStore from_disk(comm, data::DimdConfig{1, 1 << 20});
    from_disk.load_partition(file);
    data::DimdStore from_gen(comm, data::DimdConfig{1, 1 << 20});
    from_gen.load_partition(data::SyntheticImageGenerator(def_));
    ASSERT_EQ(from_disk.local_count(), from_gen.local_count());
    EXPECT_EQ(from_disk.group_checksum(), from_gen.group_checksum());
    for (std::size_t i = 0; i < from_disk.local_count(); ++i) {
      ASSERT_EQ(from_disk.item(i).blob, from_gen.item(i).blob);
      ASSERT_EQ(from_disk.item(i).label, from_gen.item(i).label);
    }
  });
}

TEST_F(PipelineTest, DonkeyBatchEqualsDimdBatchForSameSeed) {
  // The two data paths sample identically given the same seed and a
  // full local copy — the foundation of the "DIMD changes performance,
  // not results" claim.
  simmpi::Runtime::execute(1, [&](simmpi::Communicator& comm) {
    data::RecordFile file(blob_, index_);
    storage::DonkeyPool donkeys(file, def_.image, 2);
    const auto donkey_batch = donkeys.load_batch(12, /*seed=*/777);

    data::DimdStore store(comm, data::DimdConfig{1, 1 << 20});
    store.load_partition(data::SyntheticImageGenerator(def_));
    Rng rng(777);
    const auto dimd_batch = store.random_batch(12, def_.image, rng);

    EXPECT_TRUE(donkey_batch.images.equals(dimd_batch.images));
    EXPECT_EQ(donkey_batch.labels, dimd_batch.labels);
  });
}

TEST_F(PipelineTest, DonkeyAndDimdTrainersConvergeSimilarly) {
  // Same model, same per-rank seeds: the donkey-file trainer and the
  // DIMD trainer draw identical batches, so their parameters match.
  trainer::TrainerConfig cfg;
  cfg.model.classes = def_.classes;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 4;
  cfg.dataset = def_;
  cfg.seed = 9;

  std::vector<float> dimd_params, donkey_params;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer t(comm, cfg);
    for (int i = 0; i < 5; ++i) t.step();
    if (comm.rank() == 0) dimd_params = t.snapshot_params();
  });
  auto donkey_cfg = cfg;
  donkey_cfg.record_blob_path = blob_;
  donkey_cfg.record_index_path = index_;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer t(comm, donkey_cfg);
    for (int i = 0; i < 5; ++i) t.step();
    if (comm.rank() == 0) donkey_params = t.snapshot_params();
  });
  // DIMD partitions split the dataset (each rank holds half) while the
  // donkey path samples the whole file, so trajectories are not
  // identical — but both must have moved off the shared init and stayed
  // finite and sane.
  ASSERT_EQ(dimd_params.size(), donkey_params.size());
  double diff = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < dimd_params.size(); ++i) {
    ASSERT_TRUE(std::isfinite(dimd_params[i]));
    ASSERT_TRUE(std::isfinite(donkey_params[i]));
    diff += std::abs(dimd_params[i] - donkey_params[i]);
    norm += std::abs(dimd_params[i]);
  }
  EXPECT_GT(norm, 0.0);
  EXPECT_GT(diff, 0.0);  // genuinely different sampling
}

TEST(Integration, EveryAllreduceAlgorithmTrainsIdentically) {
  // Algorithm 1 with every registered collective: with deterministic
  // sampling all must land on (near-)identical parameters — the
  // collective is pure plumbing.
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 1;
  cfg.batch_per_gpu = 4;
  cfg.dataset.seed = 5;
  cfg.dataset.images = 64;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.deterministic_global_sampling = true;
  cfg.dimd.groups = 4;
  cfg.seed = 21;

  std::vector<float> reference;
  for (const auto& algo : allreduce::algorithm_names()) {
    cfg.allreduce = algo;
    std::vector<float> params;
    simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
      trainer::DistributedTrainer t(comm, cfg);
      for (int i = 0; i < 3; ++i) t.step();
      if (comm.rank() == 0) params = t.snapshot_params();
    });
    if (reference.empty()) {
      reference = params;
      continue;
    }
    ASSERT_EQ(params.size(), reference.size()) << algo;
    double max_diff = 0.0;
    for (std::size_t i = 0; i < params.size(); ++i) {
      max_diff = std::max(
          max_diff,
          std::abs(static_cast<double>(params[i]) - reference[i]));
    }
    EXPECT_LT(max_diff, 3e-5) << algo;
  }
}

TEST(Integration, ShuffleDuringTrainingKeepsLearning) {
  // Aggressive shuffling (every 2 steps) must not corrupt training.
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 4;
  cfg.dataset.seed = 6;
  cfg.dataset.images = 128;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.shuffle_every = 2;
  cfg.base_lr = 0.05;
  simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer t(comm, cfg);
    float first = 0, last = 0;
    for (int i = 0; i < 20; ++i) {
      const auto m = t.step();
      if (i == 0) first = m.loss;
      last = m.loss;
    }
    EXPECT_LT(last, first);
  });
}

TEST(Integration, ModelAndFunctionalPayloadsAgree) {
  // The gradient payload the functional trainer allreduces must equal
  // the payload the timing model prices for the same network.
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::TrainerConfig cfg;
    cfg.model.classes = 10;
    cfg.model.image = 16;
    cfg.dataset.classes = 10;
    cfg.dataset.images = 40;
    cfg.dataset.image = data::ImageDef{3, 16, 16};
    trainer::DistributedTrainer t(comm, cfg);
    t.step();
    const auto payload_floats = t.table().node_grads().size();
    EXPECT_EQ(static_cast<std::uint64_t>(payload_floats) * 4,
              nn::small_cnn_spec(10, 16).derived_gradient_bytes());
  });
}

TEST(Prefetcher, DeliversInOrderAndKeepsDepth) {
  ThreadPool pool(2);
  std::atomic<int> produced{0};
  storage::BatchPrefetcher prefetcher(
      [&](std::uint64_t seq) {
        auto promise = std::make_shared<std::promise<storage::LoadedBatch>>();
        auto fut = promise->get_future();
        pool.submit([promise, seq, &produced] {
          storage::LoadedBatch b;
          b.images = tensor::Tensor({1});
          b.images[0] = static_cast<float>(seq);
          produced++;
          promise->set_value(std::move(b));
        });
        return fut;
      },
      /*depth=*/3);
  for (int i = 0; i < 10; ++i) {
    const auto b = prefetcher.next();
    EXPECT_EQ(b.images[0], static_cast<float>(i));
  }
  // Depth-3 window: at least 10 consumed + up to 3 in flight issued.
  EXPECT_GE(prefetcher.issued(), 13u);
  EXPECT_THROW(storage::BatchPrefetcher(
                   [](std::uint64_t) {
                     return std::future<storage::LoadedBatch>();
                   },
                   0),
               CheckError);
}

}  // namespace
}  // namespace dct
