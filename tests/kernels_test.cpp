// Property tests for the vectorized hot-path kernels (src/kernels/)
// against their pinned-scalar references, ScratchPool reuse behaviour,
// and the DESIGN.md §12 determinism contract: the threaded GEMM / conv /
// im2col paths must be bit-identical at 1, 2, and 8 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <tuple>
#include <utility>
#include <vector>

#include "kernels/kernels.hpp"
#include "kernels/scratch_pool.hpp"
#include "obs/counters.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dct::kernels {
namespace {

using tensor::Conv2dShape;
using tensor::Tensor;

// Lengths that exercise the unrolled body, the scalar tail, and the
// empty case; offsets that break any accidental alignment assumption.
const std::vector<std::size_t> kLens = {0, 1, 3, 7, 8, 17, 31, 1023, 4097};
const std::vector<std::size_t> kOffsets = {0, 1, 3};

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng.next_gaussian()) * 3.0f;
  }
  // Sprinkle special values so the property tests cover them too.
  if (n > 4) {
    v[n / 4] = 0.0f;
    v[n / 2] = -0.0f;
    v[3 * n / 4] = 1e-41f;  // subnormal
  }
  return v;
}

::testing::AssertionResult bits_equal(const float* a, const float* b,
                                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i])) {
      return ::testing::AssertionFailure()
             << "bit mismatch at [" << i << "]: " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// ---- elementwise kernels vs scalar references (bit equality) ----------

TEST(Kernels, ReduceAddMatchesScalarBitwise) {
  for (std::size_t n : kLens) {
    for (std::size_t off : kOffsets) {
      const auto src = random_vec(n + off, 11 * n + off);
      auto dst_k = random_vec(n + off, 23 * n + off);
      auto dst_s = dst_k;
      reduce_add(dst_k.data() + off, src.data() + off, n);
      scalar::reduce_add(dst_s.data() + off, src.data() + off, n);
      EXPECT_TRUE(bits_equal(dst_k.data(), dst_s.data(), n + off))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST(Kernels, AxpyMatchesScalarBitwise) {
  for (std::size_t n : kLens) {
    for (std::size_t off : kOffsets) {
      for (float a : {0.0f, 1.0f, -1.7f, 0.3f}) {
        const auto x = random_vec(n + off, 7 * n + off);
        auto y_k = random_vec(n + off, 13 * n + off);
        auto y_s = y_k;
        axpy(a, x.data() + off, y_k.data() + off, n);
        scalar::axpy(a, x.data() + off, y_s.data() + off, n);
        EXPECT_TRUE(bits_equal(y_k.data(), y_s.data(), n + off))
            << "n=" << n << " off=" << off << " a=" << a;
      }
    }
  }
}

TEST(Kernels, ScaleMatchesScalarBitwise) {
  for (std::size_t n : kLens) {
    for (std::size_t off : kOffsets) {
      auto x_k = random_vec(n + off, 5 * n + off);
      auto x_s = x_k;
      scale(x_k.data() + off, 0.37f, n);
      scalar::scale(x_s.data() + off, 0.37f, n);
      EXPECT_TRUE(bits_equal(x_k.data(), x_s.data(), n + off));
    }
  }
}

TEST(Kernels, DotMatchesScalarToRounding) {
  for (std::size_t n : kLens) {
    for (std::size_t off : kOffsets) {
      const auto a = random_vec(n + off, 3 * n + off);
      const auto b = random_vec(n + off, 17 * n + off);
      const float got = dot(a.data() + off, b.data() + off, n);
      const float ref = scalar::dot(a.data() + off, b.data() + off, n);
      // Lane-tree vs sequential order: equal to rounding, and exactly
      // repeatable call-to-call.
      const float tol = 1e-4f * (std::fabs(ref) + float(n) + 1.0f);
      EXPECT_NEAR(got, ref, tol) << "n=" << n << " off=" << off;
      EXPECT_EQ(std::bit_cast<std::uint32_t>(got),
                std::bit_cast<std::uint32_t>(
                    dot(a.data() + off, b.data() + off, n)));
    }
  }
  EXPECT_EQ(dot(nullptr, nullptr, 0), 0.0f);
}

TEST(Kernels, MaxAbsMatchesScalarAndIgnoresNan) {
  for (std::size_t n : kLens) {
    auto v = random_vec(n, 29 * n + 1);
    EXPECT_EQ(max_abs(v.data(), n), scalar::max_abs(v.data(), n));
  }
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> v = {1.0f, nan, -5.0f, 2.0f};
  EXPECT_EQ(max_abs(v.data(), v.size()), 5.0f);
  EXPECT_EQ(scalar::max_abs(v.data(), v.size()), 5.0f);
  EXPECT_EQ(max_abs(nullptr, 0), 0.0f);
}

// ---- NaN / signed-zero semantics --------------------------------------

TEST(Kernels, NanAndSignedZeroPropagation) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // One IEEE add per element: NaN and Inf in either operand propagate,
  // and -0 + +0 == +0 (round-to-nearest rules), exactly like the scalar
  // reference.
  std::vector<float> dst = {-0.0f, 1.0f, 0.5f, -inf};
  std::vector<float> src = {0.0f, nan, inf, inf};
  std::vector<float> dst_ref = dst;
  reduce_add(dst.data(), src.data(), dst.size());
  scalar::reduce_add(dst_ref.data(), src.data(), dst_ref.size());
  EXPECT_TRUE(bits_equal(dst.data(), dst_ref.data(), dst.size()));
  EXPECT_EQ(std::bit_cast<std::uint32_t>(dst[0]),
            std::bit_cast<std::uint32_t>(0.0f));  // -0 + +0 → +0
  EXPECT_TRUE(std::isnan(dst[1]));
  EXPECT_EQ(dst[2], inf);
  EXPECT_TRUE(std::isnan(dst[3]));  // -inf + inf → NaN

  // axpy with a NaN coefficient poisons every element, even where x == 0.
  std::vector<float> x = {0.0f, 2.0f};
  std::vector<float> y = {1.0f, 1.0f};
  axpy(nan, x.data(), y.data(), y.size());
  EXPECT_TRUE(std::isnan(y[0]));
  EXPECT_TRUE(std::isnan(y[1]));
}

// ---- fp16 --------------------------------------------------------------

TEST(Kernels, Fp16PackMatchesScalar) {
  for (std::size_t n : kLens) {
    const auto in = random_vec(n, 41 * n + 2);
    std::vector<std::uint16_t> out_k(n), out_s(n);
    fp16_pack(in.data(), out_k.data(), n);
    scalar::fp16_pack(in.data(), out_s.data(), n);
    EXPECT_EQ(out_k, out_s);
    std::vector<float> back_k(n), back_s(n);
    fp16_unpack(out_k.data(), back_k.data(), n);
    scalar::fp16_unpack(out_s.data(), back_s.data(), n);
    EXPECT_TRUE(bits_equal(back_k.data(), back_s.data(), n));
  }
}

TEST(Kernels, Fp16ExhaustiveRoundTrip) {
  // Every non-NaN half value must survive unpack→pack exactly
  // (half-precision values are exactly representable in float32).
  for (std::uint32_t h = 0; h <= 0xFFFF; ++h) {
    const auto half = static_cast<std::uint16_t>(h);
    const bool is_nan = (half & 0x7C00u) == 0x7C00u && (half & 0x3FFu) != 0;
    const float f = half_to_float(half);
    if (is_nan) {
      EXPECT_TRUE(std::isnan(f));
      EXPECT_TRUE(std::isnan(half_to_float(float_to_half(f))));
    } else {
      EXPECT_EQ(float_to_half(f), half) << "h=" << h;
    }
  }
  // Round-to-nearest-even at the exact tie: 1 + 2⁻¹¹ is halfway between
  // 1.0 and the next half (1 + 2⁻¹⁰); even mantissa wins → 1.0.
  EXPECT_EQ(float_to_half(1.0f + 0.00048828125f), float_to_half(1.0f));
}

// ---- int8 ---------------------------------------------------------------

TEST(Kernels, Int8QuantizeMatchesScalarBitwise) {
  for (std::size_t n : kLens) {
    const auto in = random_vec(n, 53 * n + 3);
    std::vector<std::int8_t> q_k(n), q_s(n);
    const float scale_k = int8_quantize(in.data(), q_k.data(), n);
    const float scale_s = scalar::int8_quantize(in.data(), q_s.data(), n);
    EXPECT_EQ(std::bit_cast<std::uint32_t>(scale_k),
              std::bit_cast<std::uint32_t>(scale_s));
    EXPECT_EQ(q_k, q_s);
    std::vector<float> out_k(n), out_s(n);
    int8_dequantize(q_k.data(), scale_k, out_k.data(), n);
    scalar::int8_dequantize(q_s.data(), scale_s, out_s.data(), n);
    EXPECT_TRUE(bits_equal(out_k.data(), out_s.data(), n));
    // Error bound: |decode(x) - x| <= scale / 2 (+ rounding slack).
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::fabs(out_k[i] - in[i]), scale_k * 0.5f * 1.0001f + 1e-6f);
    }
  }
}

TEST(Kernels, Int8AllZeroSliceUsesUnitScale) {
  std::vector<float> zeros(17, 0.0f);
  std::vector<std::int8_t> q(zeros.size(), 42);
  EXPECT_EQ(int8_quantize(zeros.data(), q.data(), zeros.size()), 1.0f);
  for (auto b : q) EXPECT_EQ(b, 0);
  EXPECT_EQ(int8_quantize(nullptr, nullptr, 0), 1.0f);
}

// ---- ScratchPool --------------------------------------------------------

TEST(ScratchPoolTest, ReusesBuffersAcrossBorrows) {
  ScratchPool pool;
  float* first = nullptr;
  {
    auto lease = pool.borrow(1000);
    ASSERT_NE(lease.data(), nullptr);
    EXPECT_EQ(lease.size(), 1000u);
    first = lease.data();
    lease.span()[999] = 1.0f;  // the whole span is writable
  }
  {
    // Same bucket (1024) → the identical buffer comes back.
    auto lease = pool.borrow(600);
    EXPECT_EQ(lease.data(), first);
  }
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.cached_buffers(), 1u);
  EXPECT_EQ(pool.cached_bytes(), 1024 * sizeof(float));
}

TEST(ScratchPoolTest, SteadyStateHitRateAboveNinetyNine) {
  ScratchPool pool;
  // Warm up with the working set an allreduce step borrows, then run
  // "steps": every post-warmup borrow must hit.
  for (int step = 0; step < 200; ++step) {
    auto a = pool.borrow(4096);
    auto b = pool.borrow(300);
    a.span()[0] = b.span()[0] = 0.0f;
  }
  EXPECT_EQ(pool.misses(), 2u);  // one per bucket, first step only
  EXPECT_GE(pool.hit_rate(), 0.99);
}

TEST(ScratchPoolTest, NestedLeasesGetDistinctBuffers) {
  ScratchPool pool;
  auto a = pool.borrow(512);
  auto b = pool.borrow(512);
  EXPECT_NE(a.data(), b.data());
}

TEST(ScratchPoolTest, EmptyBorrowAndMoveSemantics) {
  ScratchPool pool;
  auto empty = pool.borrow(0);
  EXPECT_EQ(empty.data(), nullptr);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(pool.hits() + pool.misses(), 0u);

  auto a = pool.borrow(100);
  float* p = a.data();
  ScratchPool::Lease moved = std::move(a);
  EXPECT_EQ(moved.data(), p);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(ScratchPoolTest, ClearDropsIdleBuffersAndStats) {
  ScratchPool pool;
  { auto l = pool.borrow(256); }
  EXPECT_EQ(pool.cached_buffers(), 1u);
  pool.clear();
  EXPECT_EQ(pool.cached_buffers(), 0u);
  EXPECT_EQ(pool.cached_bytes(), 0u);
  EXPECT_EQ(pool.hits() + pool.misses(), 0u);
}

TEST(ScratchPoolTest, LocalIsPerThreadSingleton) {
  EXPECT_EQ(&ScratchPool::local(), &ScratchPool::local());
}

// ---- obs counters -------------------------------------------------------

TEST(KernelsCounters, ReduceBytesAdvances) {
  auto& c = obs::Metrics::counter("kernels.reduce_bytes");
  const std::uint64_t before = c.value();
  std::vector<float> dst(100, 1.0f), src(100, 2.0f);
  reduce_add(dst.data(), src.data(), dst.size());
  EXPECT_EQ(c.value() - before, 100 * sizeof(float));
}

TEST(KernelsCounters, ScratchHitMissCountersAdvance) {
  auto& hits = obs::Metrics::counter("kernels.scratch_hits");
  auto& misses = obs::Metrics::counter("kernels.scratch_misses");
  ScratchPool pool;
  const std::uint64_t h0 = hits.value(), m0 = misses.value();
  { auto l = pool.borrow(512); }
  { auto l = pool.borrow(512); }
  EXPECT_EQ(misses.value() - m0, 1u);
  EXPECT_EQ(hits.value() - h0, 1u);
}

// ---- determinism across thread counts (DESIGN.md §12) -------------------

Tensor random_tensor(std::vector<std::int64_t> shape, std::uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.next_gaussian());
  }
  return t;
}

class ThreadCountDeterminism : public ::testing::Test {
 protected:
  // Shapes chosen so every parallel loop splits into several chunks
  // (work > grain), making the test meaningful rather than vacuous.
  static constexpr std::int64_t kM = 33, kK = 65, kN = 300;

  void TearDown() override { ThreadPool::reset_global(0); }

  template <typename Fn>
  void expect_identical_across_thread_counts(Fn&& compute) {
    ThreadPool::reset_global(1);
    const Tensor base = compute();
    const Tensor repeat = compute();
    EXPECT_TRUE(base.equals(repeat)) << "not repeatable at 1 thread";
    for (std::size_t threads : {2u, 8u}) {
      ThreadPool::reset_global(threads);
      const Tensor got = compute();
      EXPECT_TRUE(base.equals(got))
          << "result differs at " << threads << " threads";
    }
  }
};

TEST_F(ThreadCountDeterminism, GemmAllTransposeCombos) {
  for (const bool ta : {false, true}) {
    for (const bool tb : {false, true}) {
      const Tensor a = ta ? random_tensor({kK, kM}, 1) : random_tensor({kM, kK}, 1);
      const Tensor b = tb ? random_tensor({kN, kK}, 2) : random_tensor({kK, kN}, 2);
      expect_identical_across_thread_counts([&] {
        Tensor c = random_tensor({kM, kN}, 3);
        tensor::gemm(a, ta, b, tb, c, 1.3f, 0.5f);
        return c;
      });
    }
  }
}

TEST_F(ThreadCountDeterminism, Im2colAndConvForward) {
  const Conv2dShape s{.in_channels = 3, .out_channels = 5,
                      .kernel = 3, .stride = 1, .pad = 1};
  const Tensor input = random_tensor({4, 3, 13, 11}, 7);
  const Tensor weight = random_tensor({5, 3 * 3 * 3}, 8);
  const Tensor bias = random_tensor({5}, 9);
  expect_identical_across_thread_counts(
      [&] { return tensor::im2col(input, s); });
  expect_identical_across_thread_counts(
      [&] { return tensor::conv2d_forward(input, weight, bias, s); });
}

TEST_F(ThreadCountDeterminism, ConvBackward) {
  const Conv2dShape s{.in_channels = 3, .out_channels = 5,
                      .kernel = 3, .stride = 1, .pad = 1};
  const Tensor input = random_tensor({4, 3, 13, 11}, 7);
  const Tensor weight = random_tensor({5, 3 * 3 * 3}, 8);
  const Tensor grad_out = random_tensor({4, 5, 13, 11}, 10);
  auto run = [&] {
    Tensor gi, gw({5, 3 * 3 * 3}), gb({5});
    tensor::conv2d_backward(input, weight, grad_out, s, gi, gw, gb);
    return std::tuple<Tensor, Tensor, Tensor>(std::move(gi), std::move(gw),
                                              std::move(gb));
  };
  ThreadPool::reset_global(1);
  const auto [gi1, gw1, gb1] = run();
  for (std::size_t threads : {2u, 8u}) {
    ThreadPool::reset_global(threads);
    const auto [gi, gw, gb] = run();
    EXPECT_TRUE(gi.equals(gi1)) << threads << " threads: grad_input differs";
    EXPECT_TRUE(gw.equals(gw1)) << threads << " threads: grad_weight differs";
    EXPECT_TRUE(gb.equals(gb1)) << threads << " threads: grad_bias differs";
  }
}

TEST_F(ThreadCountDeterminism, ReduceAddUnderParallelForIsDeterministic) {
  // The allreduce combine itself run through the pool: disjoint chunks →
  // bit-identical regardless of worker count.
  const auto src = random_vec(100000, 99);
  auto compute = [&] {
    Tensor dst({100000});
    auto base = random_vec(100000, 100);
    std::copy(base.begin(), base.end(), dst.data());
    ThreadPool::global().parallel_for(
        0, 100000,
        [&](std::size_t lo, std::size_t hi) {
          reduce_add(dst.data() + lo, src.data() + lo, hi - lo);
        },
        /*grain=*/4096);
    return dst;
  };
  expect_identical_across_thread_counts(compute);
}

}  // namespace
}  // namespace dct::kernels
