// Silent-data-corruption defense (DESIGN.md §16): CRC32-sealed message
// envelopes heal in-flight corruption through NACK/retransmit with a
// bounded retry budget; the trainer-side health guard screens reduced
// gradients and losses, skipping anomalous updates and escalating to
// rollback past the skip budget; the suspicion scoreboard fuses CRC,
// straggler, and anomaly signals per origin and quarantines a
// persistently-flaky rank through the elastic shrink → grow ladder.
//
// Acceptance (ISSUE): transient corruption on one rank's links is
// retransmitted until every chunk lands intact and training finishes
// bit-identical to a fault-free run; persistent corruption gets the
// rank evicted and healed from a hot spare with zero rollbacks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "obs/counters.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/runtime.hpp"
#include "trainer/checkpoint_io.hpp"
#include "trainer/distributed_trainer.hpp"
#include "trainer/elastic.hpp"
#include "trainer/health.hpp"
#include "trainer/resilient.hpp"
#include "util/error.hpp"

namespace dct {
namespace {

using simmpi::FaultKind;
using simmpi::FaultPlan;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

double seconds_since(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

std::vector<float> patterned_payload(int salt, std::size_t elems) {
  std::vector<float> v(elems);
  for (std::size_t i = 0; i < elems; ++i) {
    v[i] = 0.25f * static_cast<float>((salt + 3) * (static_cast<int>(i) % 13 + 1));
  }
  return v;
}

trainer::TrainerConfig tiny_trainer_config() {
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 2;
  cfg.dataset.seed = 11;
  cfg.dataset.images = 128;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.base_lr = 0.02;
  cfg.seed = 5;
  return cfg;
}

// ---- the envelope: seal, verify, retransmit --------------------------

TEST(Envelope, CorruptedSendIsHealedByRetransmit) {
  // A flaky link flips bits in 50% of rank 0's sends. With integrity
  // on, every tampered copy fails the receiver-NIC CRC and is
  // retransmitted until a pristine copy lands: the receiver observes
  // only intact payloads, and the link ledger charges the sender.
  constexpr int kMessages = 40;
  simmpi::Runtime rt(2);
  rt.transport().enable_integrity(true);
  rt.transport().set_integrity_retry(16, microseconds(1));
  FaultPlan plan(17);
  plan.add({.kind = FaultKind::kCorrupt, .rank = 0, .probability = 0.5});
  rt.transport().install_fault_plan(&plan);

  rt.run([&](simmpi::Communicator& comm) {
    if (comm.rank() == 0) {
      for (int m = 0; m < kMessages; ++m) {
        const auto payload = patterned_payload(m, 96);
        comm.send(std::span<const float>(payload), 1, m);
      }
      return;
    }
    for (int m = 0; m < kMessages; ++m) {
      std::vector<float> buf(96);
      comm.recv(std::span<float>(buf), 0, m);
      EXPECT_EQ(buf, patterned_payload(m, 96)) << "message " << m;
    }
  });

  const auto& t = rt.transport();
  EXPECT_GT(t.crc_failures(), 0u);
  EXPECT_GT(t.retransmits(), 0u);
  EXPECT_EQ(t.integrity_lost(), 0u);
  // Attribution: the ledger blames the flaky sender, not the receiver.
  EXPECT_GT(t.link_crc_failures(0, 1), 0u);
  EXPECT_GT(t.crc_failures_from(0), 0u);
  EXPECT_EQ(t.crc_failures_from(1), 0u);
  EXPECT_GT(plan.injected(), 0u);
}

TEST(Envelope, TruncatedSendIsHealedByRetransmit) {
  // A short DMA cuts the payload in half in flight; the length change
  // alone fails the CRC and the retransmission restores the pristine
  // bytes at full length.
  constexpr int kMessages = 30;
  simmpi::Runtime rt(2);
  rt.transport().enable_integrity(true);
  rt.transport().set_integrity_retry(16, microseconds(1));
  FaultPlan plan(19);
  plan.add({.kind = FaultKind::kTruncate, .rank = 0, .probability = 0.5});
  rt.transport().install_fault_plan(&plan);

  rt.run([&](simmpi::Communicator& comm) {
    if (comm.rank() == 0) {
      for (int m = 0; m < kMessages; ++m) {
        const auto payload = patterned_payload(m, 64);
        comm.send(std::span<const float>(payload), 1, m);
      }
      return;
    }
    for (int m = 0; m < kMessages; ++m) {
      std::vector<float> buf(64);
      const auto st = comm.recv(std::span<float>(buf), 0, m);
      EXPECT_EQ(st.bytes, 64 * sizeof(float)) << "message " << m;
      EXPECT_EQ(buf, patterned_payload(m, 64)) << "message " << m;
    }
  });

  EXPECT_GT(rt.transport().crc_failures(), 0u);
  EXPECT_GT(rt.transport().retransmits(), 0u);
  EXPECT_EQ(rt.transport().integrity_lost(), 0u);
}

TEST(Envelope, WithoutIntegrityCorruptionIsSilent) {
  // The threat model: with envelopes off, a flipped bit sails through
  // undetected — the receiver gets damaged bytes and no counter moves.
  // (This is the baseline the rest of this file defends against.)
  simmpi::Runtime rt(2);
  const std::uint64_t crc_before = rt.transport().crc_failures();
  FaultPlan plan(23);
  plan.add({.kind = FaultKind::kCorrupt, .rank = 0, .probability = 1.0});
  rt.transport().install_fault_plan(&plan);

  rt.run([&](simmpi::Communicator& comm) {
    const auto payload = patterned_payload(0, 256);
    if (comm.rank() == 0) {
      comm.send(std::span<const float>(payload), 1, 0);
      return;
    }
    std::vector<float> buf(256);
    comm.recv(std::span<float>(buf), 0, 0);
    EXPECT_NE(buf, payload) << "corruption should have gone undetected";
  });

  EXPECT_EQ(rt.transport().crc_failures(), crc_before);
  EXPECT_EQ(rt.transport().retransmits(), 0u);
  EXPECT_EQ(plan.injected(), 1u);
}

TEST(Envelope, RetryExhaustionDropsAndCountsLost) {
  // A link that corrupts every copy defeats a bounded retry budget: the
  // message is dropped as lost and the receiver's deadline machinery
  // turns the gap into a Timeout — the fail-stop ladder takes over.
  simmpi::Runtime rt(2);
  rt.transport().enable_integrity(true);
  rt.transport().set_integrity_retry(2, microseconds(1));
  rt.transport().set_recv_deadline(milliseconds(300));
  FaultPlan plan(29);
  plan.add({.kind = FaultKind::kCorrupt, .rank = 0, .probability = 1.0});
  rt.transport().install_fault_plan(&plan);

  const auto start = steady_clock::now();
  EXPECT_THROW(
      rt.run([&](simmpi::Communicator& comm) {
        const auto payload = patterned_payload(1, 32);
        if (comm.rank() == 0) {
          comm.send(std::span<const float>(payload), 1, 0);
          return;
        }
        std::vector<float> buf(32);
        comm.recv(std::span<float>(buf), 0, 0);  // never arrives
      }),
      simmpi::Timeout);
  EXPECT_LT(seconds_since(start), 30.0);

  // Budget of 2: initial copy + 2 retransmits, all corrupted → 3 CRC
  // failures, then the message is abandoned.
  EXPECT_EQ(rt.transport().crc_failures(), 3u);
  EXPECT_EQ(rt.transport().retransmits(), 2u);
  EXPECT_EQ(rt.transport().integrity_lost(), 1u);
}

TEST(Envelope, NegativeRetryBudgetIsRejected) {
  simmpi::Runtime rt(2);
  EXPECT_THROW(rt.transport().set_integrity_retry(-1, microseconds(1)),
               CheckError);
  EXPECT_THROW(rt.transport().set_integrity_retry(4, microseconds(-5)),
               CheckError);
}

// ---- HealthGuard: local numerical screening --------------------------

TEST(HealthGuard, ScreensGradientBucketsForLimitAndNonFinite) {
  trainer::HealthConfig cfg;
  cfg.grad_abs_limit = 10.0f;
  trainer::HealthGuard guard(cfg);

  std::vector<float> grads(100, 1.0f);
  const auto span = [&] { return std::span<const float>(grads); };
  EXPECT_EQ(guard.screen_gradients(span(), 32), -1);

  grads[70] = 11.0f;  // bucket 2 holds elements [64, 96)
  EXPECT_EQ(guard.screen_gradients(span(), 32), 2);
  grads[70] = 1.0f;

  grads[40] = std::numeric_limits<float>::quiet_NaN();  // bucket 1
  EXPECT_EQ(guard.screen_gradients(span(), 32), 1);

  grads[0] = -std::numeric_limits<float>::infinity();  // bucket 0 first
  EXPECT_EQ(guard.screen_gradients(span(), 32), 0);

  EXPECT_EQ(guard.screen_gradients(std::span<const float>(), 32), -1);
  // bucket_elems == 0 degrades to 1-element buckets, not a crash.
  grads.assign(4, 0.5f);
  EXPECT_EQ(guard.screen_gradients(span(), 0), -1);
}

TEST(HealthGuard, LossSpikeJudgedAgainstEmaAfterWarmup) {
  trainer::HealthConfig cfg;
  cfg.loss_warmup_steps = 2;
  cfg.loss_spike_factor = 2.0;
  cfg.loss_spike_margin = 0.5;
  cfg.loss_ema_alpha = 0.5;
  trainer::HealthGuard guard(cfg);

  // Warmup observations seed the EMA and never flag.
  EXPECT_FALSE(guard.observe_loss(1.0f));
  EXPECT_FALSE(guard.observe_loss(1.0f));
  // EMA ≈ 1.0 → limit 2.5: a 10x loss is a spike, and the spike must
  // NOT drag the baseline up after itself — it keeps flagging.
  EXPECT_TRUE(guard.observe_loss(10.0f));
  EXPECT_TRUE(guard.observe_loss(10.0f));
  EXPECT_FALSE(guard.observe_loss(1.2f));  // clean losses absorb again

  // Non-finite losses flag even during warmup.
  trainer::HealthGuard fresh(cfg);
  EXPECT_TRUE(fresh.observe_loss(std::numeric_limits<float>::quiet_NaN()));
  EXPECT_TRUE(fresh.observe_loss(std::numeric_limits<float>::infinity()));
}

TEST(HealthGuard, SkipBookkeepingAndReset) {
  trainer::HealthConfig cfg;
  trainer::HealthGuard guard(cfg);
  guard.note_skip();
  guard.note_skip();
  EXPECT_EQ(guard.consecutive_skips(), 2);
  EXPECT_EQ(guard.skipped_steps(), 2u);
  guard.note_clean();
  EXPECT_EQ(guard.consecutive_skips(), 0);
  EXPECT_EQ(guard.skipped_steps(), 2u);  // lifetime total survives
  guard.note_skip();
  guard.reset();
  EXPECT_EQ(guard.consecutive_skips(), 0);
}

// ---- HealthScoreboard: fused per-origin suspicion --------------------

TEST(HealthScoreboard, WeighsSignalsAndDrainsLocalContributions) {
  trainer::HealthConfig cfg;
  cfg.crc_weight = 1.0;
  cfg.straggler_weight = 2.0;
  cfg.anomaly_weight = 3.0;
  trainer::HealthScoreboard board(cfg, 4);

  board.add_crc_failures(1, 5);
  board.add_straggler_flag(2);
  board.add_local_anomaly(3);
  const auto local = board.take_local();
  ASSERT_EQ(local.size(), 4u);
  EXPECT_EQ(local[0], 0.0);
  EXPECT_EQ(local[1], 5.0);
  EXPECT_EQ(local[2], 2.0);
  EXPECT_EQ(local[3], 3.0);
  // take_local drains: the next sync starts from zero.
  for (double v : board.take_local()) EXPECT_EQ(v, 0.0);

  // Fused scores accumulate across syncs.
  board.ingest(local);
  board.ingest(local);
  EXPECT_EQ(board.suspicion(1), 10.0);
  EXPECT_EQ(board.suspicion(2), 4.0);
}

TEST(HealthScoreboard, VerdictEvictsWorstEligibleOverThreshold) {
  trainer::HealthConfig cfg;
  cfg.evict_threshold = 6.0;
  trainer::HealthScoreboard board(cfg, 4);
  const auto all = [](int) { return true; };

  // Nobody over the threshold → no eviction.
  board.ingest(std::vector<double>{5.0, 5.9, 0.0, 0.0});
  EXPECT_EQ(board.verdict(0, all), -1);

  // Origin 1 crosses; origin 3 crosses higher → the worst one goes.
  board.ingest(std::vector<double>{0.0, 1.0, 0.0, 9.0});
  EXPECT_EQ(board.verdict(0, all), 3);

  // Eligibility (dead slots) and the protected coordinator are skipped
  // even when their scores qualify.
  EXPECT_EQ(board.verdict(0, [](int o) { return o != 3; }), 1);
  board.ingest(std::vector<double>{20.0, 0.0, 0.0, 0.0});
  EXPECT_EQ(board.verdict(0, [](int o) { return o != 3 && o != 1; }), -1);
}

// ---- the skip → rollback ladder in the trainer -----------------------

TEST(HealthLadder, AnomalousStepsAreSkippedThenEscalate) {
  // grad_abs_limit = 0 makes every step anomalous: the first two are
  // skipped (parameters frozen), the third blows the consecutive-skip
  // budget and escalates to NumericalHealthError in lockstep.
  auto tcfg = tiny_trainer_config();
  tcfg.health.enabled = true;
  tcfg.health.grad_abs_limit = 0.0f;
  tcfg.health.max_consecutive_skips = 2;

  const std::uint64_t skipped_before =
      obs::Metrics::counter("health.skipped_steps").value();
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer tr(comm, tcfg);
    ASSERT_NE(tr.health_guard(), nullptr);
    EXPECT_EQ(tr.health_scoreboard(), nullptr);  // quarantine off
    const auto frozen = tr.snapshot_params();
    tr.step();
    tr.step();
    EXPECT_EQ(tr.snapshot_params(), frozen)
        << "skipped steps must not touch the parameters";
    EXPECT_EQ(tr.health_guard()->skipped_steps(), 2u);
    EXPECT_EQ(tr.health_guard()->consecutive_skips(), 2);
    EXPECT_THROW(tr.step(), trainer::NumericalHealthError);
    EXPECT_EQ(tr.health_guard()->skipped_steps(), 3u);
    EXPECT_EQ(tr.snapshot_params(), frozen);
  });
  EXPECT_GE(obs::Metrics::counter("health.skipped_steps").value(),
            skipped_before + 6);  // 3 skips × 2 ranks
}

TEST(HealthLadder, HealthyTrainingNeverSkips) {
  // Default thresholds on a healthy run: the guard is pure overhead,
  // zero skips, parameters move every step.
  auto tcfg = tiny_trainer_config();
  tcfg.health.enabled = true;
  simmpi::Runtime rt(2);
  rt.run([&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer tr(comm, tcfg);
    const auto before = tr.snapshot_params();
    for (int i = 0; i < 4; ++i) tr.step();
    EXPECT_EQ(tr.health_guard()->skipped_steps(), 0u);
    EXPECT_NE(tr.snapshot_params(), before);
  });
}

TEST(HealthLadder, SkipBudgetExhaustionRollsBackInResilientDriver) {
  // The driver-level escalation: a trainer whose every step is
  // anomalous rolls back until the rollback budget runs out — the run
  // aborts cleanly instead of looping forever or updating on garbage.
  const std::string dir = testing::TempDir() + "dct_health_rollback_ckpt";
  std::filesystem::remove_all(dir);

  trainer::ResilientConfig rcfg;
  rcfg.trainer = tiny_trainer_config();
  rcfg.trainer.checkpoint_dir = dir;
  rcfg.trainer.checkpoint_every = 2;
  rcfg.trainer.health.enabled = true;
  rcfg.trainer.health.grad_abs_limit = 0.0f;
  rcfg.trainer.health.max_consecutive_skips = 1;
  rcfg.ranks = 2;
  rcfg.total_iterations = 6;
  rcfg.max_rollbacks = 1;
  rcfg.recv_deadline = milliseconds(3000);

  const auto res = trainer::run_resilient(rcfg);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.rollbacks, 2u);  // attempt 0 and the one retry
  ASSERT_EQ(res.failures.size(), 2u);
  for (const auto& f : res.failures) {
    EXPECT_NE(f.find("numerical health"), std::string::npos) << f;
  }
  std::filesystem::remove_all(dir);
}

// ---- end-to-end acceptance -------------------------------------------

TEST(IntegrityE2E, CorruptedGradientTrafficIsRetransmittedBitIdentically) {
  // The headline guarantee: a transiently-flaky rank corrupts a quarter
  // of its sends across a bucketed/overlapped 8-rank run; the envelope
  // heals every chunk, so the final parameters are bit-identical to a
  // fault-free run of the same configuration.
  auto tcfg = tiny_trainer_config();
  tcfg.comm.bucket_bytes = 4096;
  tcfg.comm.overlap = true;
  constexpr std::uint64_t kIters = 8;

  std::vector<float> clean;
  {
    simmpi::Runtime rt(8);
    rt.transport().enable_integrity(true);
    rt.run([&](simmpi::Communicator& comm) {
      trainer::DistributedTrainer tr(comm, tcfg);
      while (tr.iteration() < kIters) tr.step();
      if (comm.rank() == 0) clean = tr.snapshot_params();
    });
    EXPECT_EQ(rt.transport().crc_failures(), 0u);
  }
  ASSERT_FALSE(clean.empty());

  std::vector<float> faulty;
  FaultPlan plan(53);
  plan.add({.kind = FaultKind::kCorrupt, .rank = 3, .probability = 0.25});
  {
    simmpi::Runtime rt(8);
    rt.transport().enable_integrity(true);
    rt.transport().set_integrity_retry(16, microseconds(1));
    rt.transport().install_fault_plan(&plan);
    rt.run([&](simmpi::Communicator& comm) {
      trainer::DistributedTrainer tr(comm, tcfg);
      while (tr.iteration() < kIters) tr.step();
      if (comm.rank() == 0) faulty = tr.snapshot_params();
    });
    // Every corrupted chunk was caught and retransmitted; none lost.
    EXPECT_GT(rt.transport().crc_failures(), 0u);
    EXPECT_GT(rt.transport().retransmits(), 0u);
    EXPECT_EQ(rt.transport().integrity_lost(), 0u);
    EXPECT_GT(rt.transport().crc_failures_from(3), 0u);
    EXPECT_EQ(rt.transport().crc_failures_from(0), 0u);
  }
  EXPECT_GT(plan.injected(), 0u);

  ASSERT_EQ(faulty.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    ASSERT_EQ(faulty[i], clean[i])
        << "parameter " << i << " diverged despite integrity healing";
  }
}

TEST(IntegrityE2E, PersistentlyFlakyRankIsQuarantinedAndHealedFromSpare) {
  // Gray-failure endgame: rank 3 corrupts 40% of everything it sends,
  // forever. The envelope keeps the run correct (retransmits), the CRC
  // ledger feeds the scoreboard, and within a few syncs the fused
  // suspicion crosses the threshold: rank 3 is evicted (quarantine →
  // shrink) and a hot spare is promoted onto its origin (grow). The
  // run finishes at full strength with zero rollbacks.
  const std::string dir = testing::TempDir() + "dct_quarantine_ckpt";
  std::filesystem::remove_all(dir);

  trainer::ElasticConfig ecfg;
  ecfg.trainer = tiny_trainer_config();
  ecfg.trainer.dimd.replication = 2;
  ecfg.trainer.checkpoint_dir = dir;
  ecfg.trainer.checkpoint_every = 4;
  ecfg.trainer.health.enabled = true;
  ecfg.trainer.health.quarantine = true;
  ecfg.trainer.health.scoreboard_every = 2;
  ecfg.trainer.health.evict_threshold = 8.0;
  ecfg.ranks = 8;
  ecfg.spares = 1;
  ecfg.total_iterations = 12;
  ecfg.min_ranks = 2;
  ecfg.recv_deadline = milliseconds(3000);
  ecfg.join_deadline = milliseconds(12000);
  ecfg.integrity = true;
  // 40% corruption defeats the default budget of 4 about 1% of the
  // time per message; raise it so the eviction races no Timeouts.
  ecfg.integrity_retries = 12;

  const std::uint64_t quarantines_before =
      obs::Metrics::counter("health.quarantines").value();
  FaultPlan plan(61);
  plan.add({.kind = FaultKind::kCorrupt, .rank = 3, .probability = 0.4});
  const auto start = steady_clock::now();
  const auto res = trainer::run_elastic(ecfg, &plan);

  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.quarantines, 1u);
  EXPECT_EQ(res.shrinks, 1u);
  EXPECT_EQ(res.grows, 1u);
  EXPECT_EQ(res.rollbacks, 0u);
  EXPECT_EQ(res.lost_steps, 0u);
  EXPECT_EQ(res.final_ranks, 8);  // healed back to full strength
  EXPECT_LT(seconds_since(start), 60.0);
  EXPECT_GE(obs::Metrics::counter("health.quarantines").value(),
            quarantines_before + 1);

  ASSERT_EQ(res.incidents.size(), 3u);
  EXPECT_EQ(res.incidents[0].kind, "quarantine");
  EXPECT_NE(res.incidents[0].detail.find("origin 3"), std::string::npos)
      << res.incidents[0].detail;
  EXPECT_EQ(res.incidents[1].kind, "shrink");
  EXPECT_EQ(res.incidents[1].world_size, 7);
  EXPECT_EQ(res.incidents[2].kind, "grow");
  EXPECT_EQ(res.incidents[2].world_size, 8);

  // The survivors' final checkpoint is complete and bit-identical
  // across ranks: corruption never reached the parameters.
  const auto manifest = trainer::read_manifest_info(dir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->iteration, ecfg.total_iterations);
  EXPECT_EQ(manifest->nranks, 8);
  std::vector<float> rank0 =
      trainer::read_trainer_state(
          trainer::rank_checkpoint_path(dir, manifest->iteration, 0))
          .params;
  ASSERT_FALSE(rank0.empty());
  for (int r = 1; r < 8; ++r) {
    EXPECT_EQ(trainer::read_trainer_state(
                  trainer::rank_checkpoint_path(dir, manifest->iteration, r))
                  .params,
              rank0)
        << "rank " << r << " diverged";
  }
  ASSERT_EQ(res.final_params, rank0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dct
