// Tests for the CSV metrics sink.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "trainer/distributed_trainer.hpp"
#include "trainer/metrics_log.hpp"

namespace dct::trainer {
namespace {

TEST(MetricsLog, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "dct_metrics.csv";
  {
    MetricsLog log(path, {"epoch", "loss", "top1"});
    log.append({1, 2.5, 0.31});
    log.append({2, 1.75, 0.44});
    EXPECT_EQ(log.rows(), 2u);
    log.flush();
  }
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("epoch,loss,top1\n"), std::string::npos);
  EXPECT_NE(content.find("1,2.5,0.31\n"), std::string::npos);
  EXPECT_NE(content.find("2,1.75,0.44\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsLog, QuotesColumnNamesWithDelimiters) {
  const std::string path = testing::TempDir() + "dct_metrics_quoted.csv";
  {
    MetricsLog log(path, {"epoch", "loss, mean", "say \"top1\""});
    log.append({1, 2.5, 0.31});
  }  // destructor flushes — no explicit flush() on purpose
  std::ifstream is(path);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "epoch,\"loss, mean\",\"say \"\"top1\"\"\"");
  std::string row;
  std::getline(is, row);
  EXPECT_EQ(row, "1,2.5,0.31");
  std::remove(path.c_str());
}

TEST(MetricsLog, StepColumnsRoundTripStepMetrics) {
  const std::string path = testing::TempDir() + "dct_metrics_step.csv";
  {
    MetricsLog log(path, MetricsLog::step_columns());
    StepMetrics m;
    m.loss = 1.5;
    m.step_seconds = 0.25;
    m.data_seconds = 0.0625;
    m.allreduce_seconds = 0.125;
    m.comm_bytes = 4096;
    log.append_step(/*rank=*/3, /*step=*/7, /*world_size=*/8, m,
                    /*job=*/2);
    log.append_step(/*rank=*/3, /*step=*/8, /*world_size=*/8, m);
    EXPECT_EQ(log.rows(), 2u);
  }
  std::ifstream is(path);
  std::string header, row;
  std::getline(is, header);
  EXPECT_EQ(header,
            "rank,job,step,world_size,loss,step_seconds,data_seconds,"
            "allreduce_seconds,comm_bytes");
  std::getline(is, row);
  EXPECT_EQ(row, "3,2,7,8,1.5,0.25,0.0625,0.125,4096");
  std::getline(is, row);  // single-tenant rows default to job -1
  EXPECT_EQ(row, "3,-1,8,8,1.5,0.25,0.0625,0.125,4096");
  std::remove(path.c_str());
}

TEST(MetricsLog, RowsAreDurableWithoutFlushOrDestructor) {
  // Every append flushes: a shrink or crash mid-epoch must not lose the
  // in-flight window. Read the file back while the log is still open.
  const std::string path = testing::TempDir() + "dct_metrics_durable.csv";
  MetricsLog log(path, {"a", "b"});
  log.append({1.0, 2.0});
  log.append({3.0, 4.0});
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("1,2\n"), std::string::npos);
  EXPECT_NE(content.find("3,4\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsLog, RejectsArityMismatchAndBadPath) {
  const std::string path = testing::TempDir() + "dct_metrics2.csv";
  MetricsLog log(path, {"a", "b"});
  EXPECT_THROW(log.append({1.0}), CheckError);
  EXPECT_THROW(MetricsLog("/nonexistent/dir/x.csv", {"a"}), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dct::trainer
