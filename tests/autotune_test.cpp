// Autotuner tests (DESIGN.md §17): deterministic commits, cross-rank
// consensus, convergence within the warmup window, and agreement with
// an exhaustive offline sweep of modeled step times.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "allreduce/autotune.hpp"
#include "netsim/cluster.hpp"
#include "simmpi/runtime.hpp"
#include "trainer/distributed_trainer.hpp"

namespace dct::allreduce {
namespace {

std::vector<TuneCandidate> three_candidates() {
  return {{"naive", 1, 0}, {"halving_doubling", 1, 0}, {"bucket_ring", 4, 0}};
}

TEST(Autotune, PayloadClassIsPow2Ceiling) {
  EXPECT_EQ(Tuner::payload_class(1), 1024u);
  EXPECT_EQ(Tuner::payload_class(1024), 1024u);
  EXPECT_EQ(Tuner::payload_class(1025), 2048u);
  EXPECT_EQ(Tuner::payload_class(3 << 20), std::size_t{4} << 20);
}

TEST(Autotune, ChunkEndsCoverPayload) {
  TuneCandidate c{"naive", 4, 0};
  const auto ends = Tuner::chunk_ends(1000, c);
  ASSERT_EQ(ends.size(), 4u);
  EXPECT_EQ(ends.back(), 1000u);
  TuneCandidate b{"naive", 1, 512};  // 512 B buckets → 128 floats
  const auto bends = Tuner::chunk_ends(1000, b);
  ASSERT_EQ(bends.size(), 8u);
  EXPECT_EQ(bends.front(), 128u);
  EXPECT_EQ(bends.back(), 1000u);
  EXPECT_TRUE(Tuner::chunk_ends(0, c).empty());
}

TEST(Autotune, RoundRobinsThenCommitsArgmin) {
  TunerConfig cfg;
  cfg.candidates = three_candidates();
  cfg.trials_per_candidate = 2;
  const std::size_t elems = 4096;
  // Synthetic costs: candidate 1 is the cheapest.
  const std::vector<double> cost{3e-3, 1e-3, 2e-3};
  simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
    Tuner tuner(cfg);
    int measured = 0;
    while (true) {
      auto choice = tuner.next(elems);
      if (!choice.measuring) break;
      ++measured;
      tuner.record(choice,
                   cost[static_cast<std::size_t>(choice.candidate_index)]);
      if (tuner.maybe_commit(comm)) break;
      ASSERT_LT(measured, 100) << "tuner failed to converge";
    }
    // Converged within the warmup budget: candidates × trials steps.
    EXPECT_EQ(measured, 3 * cfg.trials_per_candidate);
    ASSERT_TRUE(tuner.committed(elems));
    EXPECT_EQ(tuner.committed_candidate(elems)->algo, "halving_doubling");
    // Post-commit choices are the winner, unmeasured.
    auto after = tuner.next(elems);
    EXPECT_FALSE(after.measuring);
    EXPECT_EQ(after.candidate.algo, "halving_doubling");
  });
}

TEST(Autotune, RanksWithDivergentMeasurementsCommitIdentically) {
  // Each rank sees different wall-clock noise — even contradictory
  // orderings — yet the max-consensus must land every rank on the same
  // winner. Rank r measures candidate i at (1 + i + r·((i·7) % 3)) ms:
  // per-rank argmins differ, the max over ranks is what counts.
  TunerConfig cfg;
  cfg.candidates = three_candidates();
  cfg.trials_per_candidate = 1;
  const std::size_t elems = 1024;
  std::vector<std::string> winner(8);
  simmpi::Runtime::execute(8, [&](simmpi::Communicator& comm) {
    Tuner tuner(cfg);
    while (true) {
      auto choice = tuner.next(elems);
      if (!choice.measuring) break;
      const int i = choice.candidate_index;
      const double ms = 1.0 + i + comm.rank() * ((i * 7) % 3);
      tuner.record(choice, ms * 1e-3);
      if (tuner.maybe_commit(comm)) break;
    }
    ASSERT_TRUE(tuner.committed(elems));
    winner[static_cast<std::size_t>(comm.rank())] =
        tuner.committed_candidate(elems)->algo;
  });
  for (int r = 1; r < 8; ++r) {
    EXPECT_EQ(winner[static_cast<std::size_t>(r)], winner[0]);
  }
}

TEST(Autotune, DeterministicAcrossRuns) {
  // Same measured costs → same committed config, run after run.
  TunerConfig cfg;
  cfg.candidates = Tuner::default_candidates();
  cfg.trials_per_candidate = 1;
  auto run_once = [&]() {
    std::string committed;
    simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
      Tuner tuner(cfg);
      while (true) {
        auto choice = tuner.next(2048);
        if (!choice.measuring) break;
        // Deterministic pseudo-cost derived from the candidate shape.
        const double s = 1e-3 * (1.0 + (choice.candidate.algo.size() * 13 +
                                        choice.candidate.chunks) %
                                           7);
        tuner.record(choice, s);
        if (tuner.maybe_commit(comm)) break;
      }
      if (comm.rank() == 0) {
        committed = tuner.committed_candidate(2048)->label();
      }
    });
    return committed;
  };
  const auto first = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(run_once(), first);
  EXPECT_EQ(run_once(), first);
}

TEST(Autotune, ClassesTuneIndependently) {
  TunerConfig cfg;
  cfg.candidates = three_candidates();
  cfg.trials_per_candidate = 1;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    Tuner tuner(cfg);
    // Small payloads: candidate 0 cheap. Large payloads: candidate 2.
    for (const std::size_t elems : {std::size_t{256}, std::size_t{1} << 20}) {
      while (true) {
        auto choice = tuner.next(elems);
        if (!choice.measuring) break;
        const bool small = elems <= 256;
        const int i = choice.candidate_index;
        const double s = small ? (i == 0 ? 1.0 : 5.0) : (i == 2 ? 1.0 : 5.0);
        tuner.record(choice, s * 1e-3);
        if (tuner.maybe_commit(comm)) break;
      }
    }
    EXPECT_EQ(tuner.committed_candidate(256)->algo, "naive");
    EXPECT_EQ(tuner.committed_candidate(std::size_t{1} << 20)->algo,
              "bucket_ring");
    EXPECT_EQ(tuner.decisions().size(), 2u);
    // The decision table renders one row per class.
    const auto rendered = tuner.decision_table().to_string("autotune");
    EXPECT_NE(rendered.find("committed"), std::string::npos);
  });
}

TEST(Autotune, CommittedConfigMatchesExhaustiveModeledSweep) {
  // Acceptance criterion (ISSUE 10): feed the tuner the netsim-modeled
  // per-step costs — the same numbers `dctrain plan` sweeps
  // exhaustively — and the committed config's modeled time must be
  // within 5% of the best fixed configuration, on both a fat-tree and a
  // torus fabric.
  const std::uint64_t payload = std::uint64_t{8} << 20;
  const std::size_t elems = payload / sizeof(float);
  TunerConfig tcfg;
  for (const char* a : {"naive", "recursive_halving", "halving_doubling",
                        "hierarchical", "torus", "bucket_ring", "ring",
                        "multicolor"}) {
    tcfg.candidates.push_back({a, 1, 0});
  }
  tcfg.trials_per_candidate = 1;
  for (const std::string topo : {"fattree", "torus"}) {
    netsim::ClusterConfig cfg;
    cfg.nodes = 16;
    cfg.topology = topo;
    std::vector<double> modeled;
    double best = 0.0;
    for (const auto& c : tcfg.candidates) {
      const double t = netsim::allreduce_time_s(cfg, c.algo, payload);
      ASSERT_GT(t, 0.0) << topo << " " << c.algo;
      modeled.push_back(t);
      if (best == 0.0 || t < best) best = t;
    }
    simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
      Tuner tuner(tcfg);
      while (true) {
        auto choice = tuner.next(elems);
        if (!choice.measuring) break;
        tuner.record(
            choice, modeled[static_cast<std::size_t>(choice.candidate_index)]);
        if (tuner.maybe_commit(comm)) break;
      }
      const TuneCandidate* won = tuner.committed_candidate(elems);
      ASSERT_NE(won, nullptr) << topo;
      const double committed_t =
          netsim::allreduce_time_s(cfg, won->algo, payload);
      EXPECT_LE(committed_t, best * 1.05)
          << topo << ": committed " << won->algo << " at " << committed_t
          << "s vs best fixed " << best << "s";
    });
  }
}

TEST(Autotune, TrainerWarmupPreservesTrajectoryAndCommits) {
  // Wired into DistributedTrainer: a warmup whose candidates are all
  // bit-identical to naive must leave the parameter trajectory exactly
  // equal to a fixed naive run, and every rank must end up on the same
  // committed algorithm driving subsequent steps.
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 2;
  cfg.batch_per_gpu = 2;
  cfg.dataset.seed = 11;
  cfg.dataset.images = 64;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.base_lr = 0.02;
  cfg.seed = 5;
  cfg.allreduce = "naive";

  auto tuned = cfg;
  tuned.autotune = true;
  for (const char* a : {"naive", "halving_doubling", "hierarchical",
                        "torus"}) {
    tuned.tuner.candidates.push_back({a, 1, 0});
  }
  tuned.tuner.trials_per_candidate = 1;

  const int steps = 6;  // 4 warmup trials + 2 committed steps
  std::vector<float> fixed_params;
  simmpi::Runtime::execute(3, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < steps; ++i) trainer.step();
    if (comm.rank() == 0) fixed_params = trainer.snapshot_params();
  });

  std::vector<std::string> committed(3);
  std::vector<float> tuned_params;
  simmpi::Runtime::execute(3, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, tuned);
    ASSERT_NE(trainer.tuner(), nullptr);
    std::uint64_t warmup_bytes = 0;
    for (int i = 0; i < steps; ++i) {
      warmup_bytes += trainer.step().comm_bytes;
    }
    EXPECT_GT(warmup_bytes, 0u);
    const auto decisions = trainer.tuner()->decisions();
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_TRUE(decisions[0].committed)
        << "warmup must finish within " << steps << " steps";
    committed[static_cast<std::size_t>(comm.rank())] =
        trainer.allreduce_name();
    if (comm.rank() == 0) tuned_params = trainer.snapshot_params();
  });

  for (int r = 1; r < 3; ++r) {
    EXPECT_EQ(committed[static_cast<std::size_t>(r)], committed[0]);
  }
  // The committed winner replaced the configured algorithm.
  EXPECT_NE(committed[0], "");
  // All candidates are bit-identical to naive, so tuning is free:
  // exactly the fixed-naive parameters.
  EXPECT_EQ(tuned_params, fixed_params);
}

TEST(Autotune, TrainerAdoptsWinningBucketSizeIntoGradComm) {
  // A winner that carries a bucket size must flip the trainer onto the
  // bucketed GradComm pipeline after commit (visible as continued
  // stepping with comm bytes flowing — the pipeline path is exercised
  // post-commit because cfg.comm becomes enabled).
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 1;
  cfg.batch_per_gpu = 2;
  cfg.dataset.seed = 3;
  cfg.dataset.images = 32;
  cfg.dataset.classes = 4;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.seed = 9;
  cfg.autotune = true;
  cfg.tuner.candidates = {{"halving_doubling", 1, 16 * 1024}};
  cfg.tuner.trials_per_candidate = 1;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    std::uint64_t post_commit_bytes = 0;
    for (int i = 0; i < 3; ++i) {
      const auto m = trainer.step();
      if (i > 0) post_commit_bytes += m.comm_bytes;
    }
    EXPECT_TRUE(trainer.tuner()->decisions()[0].committed);
    EXPECT_EQ(trainer.allreduce_name(), "halving_doubling");
    EXPECT_GT(post_commit_bytes, 0u);
    // Ranks still agree on the model.
    auto mine = trainer.snapshot_params();
    auto reference = mine;
    comm.bcast(std::span<float>(reference), 0);
    EXPECT_EQ(mine, reference);
  });
}

}  // namespace
}  // namespace dct::allreduce
