// Stress and randomized-property tests for the simmpi runtime: random
// point-to-point traffic patterns with full delivery accounting, nested
// communicator splits, interleaved collectives on sibling communicators,
// and high-churn collective sequences — the conditions under which tag/
// context bookkeeping bugs actually surface.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <numeric>

#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace dct::simmpi {
namespace {

TEST(Stress, RandomTrafficIsFullyDelivered) {
  // Every rank sends a random number of tagged messages to random peers;
  // a final exchange of per-pair counts lets each receiver drain exactly
  // what was sent to it. Checks: no loss, no duplication, payload intact.
  const int p = 6;
  Runtime::execute(p, [&](Communicator& comm) {
    Rng rng(500 + static_cast<std::uint64_t>(comm.rank()));
    const int out = static_cast<int>(rng.next_below(40)) + 10;
    std::vector<std::uint64_t> sent_to(static_cast<std::size_t>(p), 0);
    std::vector<std::uint64_t> sum_to(static_cast<std::size_t>(p), 0);
    for (int i = 0; i < out; ++i) {
      int dest = static_cast<int>(rng.next_below(p));
      if (dest == comm.rank()) dest = (dest + 1) % p;
      const std::uint64_t value = rng.next_u64() >> 8;
      comm.send_value<std::uint64_t>(value, dest, /*tag=*/7);
      ++sent_to[static_cast<std::size_t>(dest)];
      sum_to[static_cast<std::size_t>(dest)] += value;
    }
    // Tell every peer how many messages and what checksum to expect.
    std::vector<std::uint64_t> expect_count(static_cast<std::size_t>(p));
    std::vector<std::uint64_t> expect_sum(static_cast<std::size_t>(p));
    comm.alltoall(std::span<const std::uint64_t>(sent_to),
                  std::span<std::uint64_t>(expect_count));
    comm.alltoall(std::span<const std::uint64_t>(sum_to),
                  std::span<std::uint64_t>(expect_sum));
    std::uint64_t incoming = 0, checksum = 0;
    for (int r = 0; r < p; ++r) {
      incoming += expect_count[static_cast<std::size_t>(r)];
    }
    std::uint64_t got_sum = 0;
    for (std::uint64_t i = 0; i < incoming; ++i) {
      got_sum += comm.recv_value<std::uint64_t>(kAnySource, 7);
    }
    for (int r = 0; r < p; ++r) {
      checksum += expect_sum[static_cast<std::size_t>(r)];
    }
    EXPECT_EQ(got_sum, checksum);
  });
}

TEST(Stress, NestedSplitsStayConsistent) {
  // Split world in half, then split each half again; collectives at all
  // three levels interleave without cross-talk.
  Runtime::execute(8, [](Communicator& world) {
    auto half = world.split(world.rank() / 4, world.rank());
    auto quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(half.size(), 4);
    EXPECT_EQ(quarter.size(), 2);
    // Sum of world ranks at each level.
    auto sum_of = [](Communicator& c, int value) {
      std::int64_t v = value;
      c.allreduce_inplace(std::span<std::int64_t>(&v, 1),
                          [](std::int64_t a, std::int64_t b) { return a + b; });
      return v;
    };
    const auto w = sum_of(world, world.rank());
    EXPECT_EQ(w, 28);
    const auto h = sum_of(half, world.rank());
    EXPECT_EQ(h, world.rank() < 4 ? 6 : 22);
    const auto q = sum_of(quarter, world.rank());
    const int base = (world.rank() / 2) * 2;
    EXPECT_EQ(q, base * 2 + 1);
  });
}

TEST(Stress, ManyCollectivesInSequence) {
  // 200 mixed collectives back-to-back: the per-handle op sequence must
  // keep every instance isolated.
  Runtime::execute(5, [](Communicator& comm) {
    Rng rng(42);  // same seed on every rank → same op order
    std::int64_t accumulator = comm.rank();
    for (int i = 0; i < 200; ++i) {
      switch (rng.next_below(4)) {
        case 0: {
          comm.barrier();
          break;
        }
        case 1: {
          std::int64_t v = (comm.rank() == 2) ? i : -1;
          comm.bcast(std::span<std::int64_t>(&v, 1), 2);
          ASSERT_EQ(v, i);
          break;
        }
        case 2: {
          std::int64_t v = 1;
          comm.allreduce_inplace(
              std::span<std::int64_t>(&v, 1),
              [](std::int64_t a, std::int64_t b) { return a + b; });
          ASSERT_EQ(v, 5);
          break;
        }
        default: {
          auto all = comm.allgather_value<std::int64_t>(accumulator);
          ASSERT_EQ(all.size(), 5u);
          break;
        }
      }
      ++accumulator;
    }
  });
}

TEST(Stress, SiblingCommunicatorsInterleave) {
  // Two sibling sub-communicators run different collective sequences
  // concurrently; contexts must keep them apart.
  Runtime::execute(6, [](Communicator& world) {
    auto sub = world.split(world.rank() % 2, world.rank());
    ASSERT_EQ(sub.size(), 3);
    for (int i = 0; i < 50; ++i) {
      if (world.rank() % 2 == 0) {
        // Even group: allgather.
        auto all = sub.allgather_value<int>(world.rank() * 1000 + i);
        for (int r = 0; r < 3; ++r) {
          ASSERT_EQ(all[static_cast<std::size_t>(r)], r * 2000 + i);
        }
      } else {
        // Odd group: reduce to rotating roots.
        std::int64_t v = world.rank();
        sub.reduce_inplace(std::span<std::int64_t>(&v, 1), i % 3,
                           [](std::int64_t a, std::int64_t b) { return a + b; });
        if (sub.rank() == i % 3) ASSERT_EQ(v, 1 + 3 + 5);
        sub.barrier();
      }
    }
    world.barrier();
  });
}

TEST(Stress, LargeAlltoallvRoundRobin) {
  // Ragged alltoallv with per-pair sizes up to ~64 KiB, repeated; checks
  // byte-exact delivery under load.
  const int p = 4;
  Runtime::execute(p, [&](Communicator& comm) {
    Rng rng(900 + static_cast<std::uint64_t>(comm.rank()));
    for (int round = 0; round < 5; ++round) {
      // Deterministic size matrix both sides can compute.
      auto size_of = [round](int src, int dst) {
        return static_cast<std::size_t>(((src * 7 + dst * 13 + round * 29) %
                                         64) *
                                        1024);
      };
      std::vector<std::size_t> scounts(p), sdispls(p), rcounts(p), rdispls(p);
      std::size_t stot = 0, rtot = 0;
      for (int d = 0; d < p; ++d) {
        scounts[static_cast<std::size_t>(d)] = size_of(comm.rank(), d);
        sdispls[static_cast<std::size_t>(d)] = stot;
        stot += scounts[static_cast<std::size_t>(d)];
        rcounts[static_cast<std::size_t>(d)] = size_of(d, comm.rank());
        rdispls[static_cast<std::size_t>(d)] = rtot;
        rtot += rcounts[static_cast<std::size_t>(d)];
      }
      std::vector<std::uint8_t> send(stot), recv(rtot, 0);
      for (int d = 0; d < p; ++d) {
        for (std::size_t i = 0; i < scounts[static_cast<std::size_t>(d)];
             ++i) {
          send[sdispls[static_cast<std::size_t>(d)] + i] =
              static_cast<std::uint8_t>((comm.rank() * 31 + d * 7 + i) & 0xFF);
        }
      }
      comm.alltoallv<std::uint8_t>(send, scounts, sdispls, recv, rcounts,
                                   rdispls);
      for (int s = 0; s < p; ++s) {
        for (std::size_t i = 0; i < rcounts[static_cast<std::size_t>(s)];
             i += 997) {
          ASSERT_EQ(recv[rdispls[static_cast<std::size_t>(s)] + i],
                    static_cast<std::uint8_t>(
                        (s * 31 + comm.rank() * 7 + i) & 0xFF));
        }
      }
    }
  });
}

TEST(Stress, RuntimeReuseAcrossRuns) {
  // One Runtime, several run() invocations: fresh world contexts must
  // not see stale traffic.
  Runtime rt(3);
  for (int iteration = 0; iteration < 5; ++iteration) {
    rt.run([&](Communicator& comm) {
      // Leave an unreceived message behind on purpose (to rank 1's box,
      // old context) — must not pollute the next run.
      if (comm.rank() == 0) {
        comm.send_value<int>(iteration, 1, 99);
      }
      std::int64_t v = 1;
      comm.allreduce_inplace(std::span<std::int64_t>(&v, 1),
                             [](std::int64_t a, std::int64_t b) { return a + b; });
      EXPECT_EQ(v, 3);
    });
  }
}

}  // namespace
}  // namespace dct::simmpi
