// Tests for the tensor kernels: gemm against naive reference, im2col /
// col2im adjointness, pooling, batch norm statistics, softmax losses.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace dct::tensor {
namespace {

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng,
                     float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = (rng.next_float() * 2.0f - 1.0f) * scale;
  }
  return t;
}

TEST(Tensor, ConstructionAndIndexing) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  Tensor u = Tensor::full({4}, 2.5f);
  EXPECT_EQ(u[3], 2.5f);
  EXPECT_THROW(Tensor({-1, 2}), CheckError);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.at(2, 3), 11.0f);
  EXPECT_THROW(t.reshaped({5, 2}), CheckError);
}

TEST(Tensor, KaimingStats) {
  Rng rng(1);
  Tensor t = Tensor::kaiming({1000, 50}, 50, rng);
  double mean = 0, var = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) mean += t[i];
  mean /= static_cast<double>(t.numel());
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    var += (t[i] - mean) * (t[i] - mean);
  }
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(var), std::sqrt(2.0 / 50.0), 0.01);
}

TEST(Gemm, MatchesNaive) {
  Rng rng(2);
  const std::int64_t m = 7, k = 11, n = 5;
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({k, n}, rng);
  Tensor c({m, n});
  gemm(a, false, b, false, c);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += a.at(i, kk) * b.at(kk, j);
      ASSERT_NEAR(c.at(i, j), acc, 1e-4);
    }
  }
}

TEST(Gemm, TransposeVariantsAgree) {
  Rng rng(3);
  const std::int64_t m = 4, k = 6, n = 3;
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({k, n}, rng);
  // Build transposed copies.
  Tensor at({k, m}), bt({n, k});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < k; ++j) at.at(j, i) = a.at(i, j);
  }
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < n; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor c0({m, n}), c1({m, n}), c2({m, n}), c3({m, n});
  gemm(a, false, b, false, c0);
  gemm(at, true, b, false, c1);
  gemm(a, false, bt, true, c2);
  gemm(at, true, bt, true, c3);
  EXPECT_LT(c0.max_abs_diff(c1), 1e-5f);
  EXPECT_LT(c0.max_abs_diff(c2), 1e-5f);
  EXPECT_LT(c0.max_abs_diff(c3), 1e-5f);
}

TEST(Gemm, AlphaBetaSemantics) {
  Rng rng(4);
  Tensor a = random_tensor({2, 2}, rng);
  Tensor b = random_tensor({2, 2}, rng);
  Tensor c = Tensor::full({2, 2}, 1.0f);
  gemm(a, false, b, false, c, 2.0f, 3.0f);
  Tensor ref({2, 2});
  gemm(a, false, b, false, ref);
  for (std::int64_t i = 0; i < 4; ++i) {
    ASSERT_NEAR(c[i], 2.0f * ref[i] + 3.0f, 1e-5);
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 2}), c({2, 2});
  EXPECT_THROW(gemm(a, false, b, false, c), CheckError);
}

TEST(Gemm, NanAndInfPropagatePastZeroEntries) {
  // Regression: gemm used to skip the inner update when a(i,kk) == 0,
  // which silently turned 0·NaN and 0·Inf into 0. IEEE semantics:
  // 0·NaN = NaN and 0·Inf = NaN, so a NaN/Inf anywhere in a used B
  // column must reach C even when the matching A entries are zero.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a({1, 2});  // zeros
  Tensor b({2, 2});
  b.at(0, 0) = nan;
  b.at(1, 1) = inf;
  Tensor c({1, 2});
  gemm(a, false, b, false, c);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0·NaN + 0·0
  EXPECT_TRUE(std::isnan(c.at(0, 1)));  // 0·0 + 0·Inf
  // Same property on the dot-product (trans_b) path.
  Tensor bt({2, 2});
  bt.at(0, 0) = nan;
  bt.at(1, 1) = inf;
  Tensor c2({1, 2});
  gemm(a, false, bt, true, c2);
  EXPECT_TRUE(std::isnan(c2.at(0, 0)));
  EXPECT_TRUE(std::isnan(c2.at(0, 1)));
}

TEST(Conv, Identity1x1KernelPassesThrough) {
  Rng rng(5);
  Tensor x = random_tensor({2, 3, 5, 5}, rng);
  Conv2dShape s{3, 3, 1, 1, 0};
  Tensor w({3, 3});  // identity mixing
  for (std::int64_t i = 0; i < 3; ++i) w.at(i, i) = 1.0f;
  Tensor out = conv2d_forward(x, w, Tensor({0}), s);
  EXPECT_LT(out.max_abs_diff(x), 1e-6f);
}

TEST(Conv, MatchesDirectConvolution) {
  Rng rng(6);
  Tensor x = random_tensor({2, 2, 6, 6}, rng);
  Conv2dShape s{2, 3, 3, 1, 1};
  Tensor w = random_tensor({3, 2 * 9}, rng);
  Tensor bias = random_tensor({3}, rng);
  Tensor out = conv2d_forward(x, w, bias, s);
  ASSERT_EQ(out.shape(), (std::vector<std::int64_t>{2, 3, 6, 6}));
  // Direct computation at a few positions.
  for (std::int64_t img : {0, 1}) {
    for (std::int64_t co : {0, 2}) {
      for (std::int64_t oi : {0, 3, 5}) {
        for (std::int64_t oj : {1, 5}) {
          double acc = bias[co];
          for (std::int64_t ci = 0; ci < 2; ++ci) {
            for (std::int64_t ki = 0; ki < 3; ++ki) {
              for (std::int64_t kj = 0; kj < 3; ++kj) {
                const std::int64_t ii = oi - 1 + ki, jj = oj - 1 + kj;
                if (ii < 0 || ii >= 6 || jj < 0 || jj >= 6) continue;
                acc += x.at(img, ci, ii, jj) *
                       w.at(co, (ci * 3 + ki) * 3 + kj);
              }
            }
          }
          ASSERT_NEAR(out.at(img, co, oi, oj), acc, 1e-4);
        }
      }
    }
  }
}

TEST(Conv, StrideAndPadShapes) {
  Conv2dShape s{1, 1, 3, 2, 1};
  EXPECT_EQ(s.out_size(224), 112);
  Conv2dShape t{1, 1, 7, 2, 3};
  EXPECT_EQ(t.out_size(224), 112);
  Conv2dShape u{1, 1, 1, 1, 0};
  EXPECT_EQ(u.out_size(7), 7);
}

TEST(Conv, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
  // that makes the conv backward correct.
  Rng rng(7);
  Conv2dShape s{2, 4, 3, 2, 1};
  Tensor x = random_tensor({1, 2, 5, 5}, rng);
  const Tensor cx = im2col(x, s);
  Tensor y = random_tensor(cx.shape(), rng);
  const Tensor ay = col2im(y, s, 1, 5, 5);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < cx.numel(); ++i) lhs += cx[i] * y[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * ay[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Pool, MaxPoolForwardBackward) {
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  std::vector<std::int64_t> argmax;
  Tensor out = maxpool_forward(x, 2, 2, argmax);
  ASSERT_EQ(out.shape(), (std::vector<std::int64_t>{1, 1, 2, 2}));
  EXPECT_EQ(out[0], 5.0f);
  EXPECT_EQ(out[3], 15.0f);
  Tensor g({1, 1, 2, 2});
  g.fill(1.0f);
  Tensor gin = maxpool_backward(g, argmax, x.shape());
  EXPECT_EQ(gin[5], 1.0f);
  EXPECT_EQ(gin[15], 1.0f);
  EXPECT_EQ(gin[0], 0.0f);
  double total = sum(gin);
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(Pool, GlobalAvgPool) {
  Tensor x({2, 3, 2, 2});
  x.fill(2.0f);
  Tensor out = global_avgpool_forward(x);
  ASSERT_EQ(out.shape(), (std::vector<std::int64_t>{2, 3}));
  EXPECT_EQ(out.at(1, 2), 2.0f);
  Tensor g({2, 3});
  g.fill(4.0f);
  Tensor gin = global_avgpool_backward(g, x.shape());
  EXPECT_EQ(gin[0], 1.0f);  // 4 / (2·2)
}

TEST(BatchNorm, NormalisesPerChannel) {
  Rng rng(8);
  Tensor x = random_tensor({4, 2, 3, 3}, rng, 5.0f);
  Tensor gamma = Tensor::full({2}, 1.0f);
  Tensor beta({2});
  BatchNormCache cache;
  Tensor out = batchnorm_forward(x, gamma, beta, 1e-5f, cache);
  for (std::int64_t ch = 0; ch < 2; ++ch) {
    double mean = 0, var = 0;
    std::int64_t count = 0;
    for (std::int64_t img = 0; img < 4; ++img) {
      for (std::int64_t i = 0; i < 9; ++i) {
        mean += out.data()[(img * 2 + ch) * 9 + i];
        ++count;
      }
    }
    mean /= count;
    for (std::int64_t img = 0; img < 4; ++img) {
      for (std::int64_t i = 0; i < 9; ++i) {
        const double d = out.data()[(img * 2 + ch) * 9 + i] - mean;
        var += d * d;
      }
    }
    var /= count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, GammaBetaApplied) {
  Rng rng(9);
  Tensor x = random_tensor({2, 1, 2, 2}, rng);
  Tensor gamma = Tensor::full({1}, 3.0f);
  Tensor beta = Tensor::full({1}, -1.0f);
  BatchNormCache cache;
  Tensor out = batchnorm_forward(x, gamma, beta, 1e-5f, cache);
  double mean = 0;
  for (std::int64_t i = 0; i < out.numel(); ++i) mean += out[i];
  EXPECT_NEAR(mean / static_cast<double>(out.numel()), -1.0, 1e-4);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(10);
  Tensor logits = random_tensor({5, 7}, rng, 3.0f);
  Tensor p = softmax(logits);
  for (std::int64_t i = 0; i < 5; ++i) {
    double row = 0;
    for (std::int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(p.at(i, j), 0.0f);
      row += p.at(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits({1, 3});
  logits[0] = 1000.0f;
  logits[1] = 1001.0f;
  logits[2] = 999.0f;
  Tensor p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_GT(p[1], p[0]);
}

TEST(CrossEntropy, LossAndGradient) {
  Tensor logits({2, 3});
  // Uniform logits → loss = ln 3, grad = (p - y)/N.
  std::vector<std::int32_t> labels{1, 2};
  Tensor grad;
  const float loss = softmax_cross_entropy(logits, labels, grad);
  EXPECT_NEAR(loss, std::log(3.0f), 1e-5);
  EXPECT_NEAR(grad.at(0, 1), (1.0f / 3.0f - 1.0f) / 2.0f, 1e-5);
  EXPECT_NEAR(grad.at(0, 0), (1.0f / 3.0f) / 2.0f, 1e-5);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(11);
  Tensor logits = random_tensor({3, 4}, rng);
  std::vector<std::int32_t> labels{2, 0, 3};
  Tensor grad;
  softmax_cross_entropy(logits, labels, grad);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    Tensor g_unused;
    const float fp = softmax_cross_entropy(lp, labels, g_unused);
    const float fm = softmax_cross_entropy(lm, labels, g_unused);
    ASSERT_NEAR((fp - fm) / (2 * eps), grad[i], 2e-3);
  }
}

TEST(Accuracy, Top1) {
  Tensor logits({3, 3});
  logits.at(0, 0) = 1;  // argmax 0
  logits.at(1, 2) = 1;  // argmax 2
  logits.at(2, 1) = 1;  // argmax 1
  std::vector<std::int32_t> labels{0, 2, 0};
  EXPECT_NEAR(top1_accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace dct::tensor
