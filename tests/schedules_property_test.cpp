// Property sweep over the netsim schedule builders: for every algorithm
// × rank count × payload, the generated DAG must simulate to completion
// with sane physics — positive makespan, byte conservation in the
// expected band, monotonicity in payload, and a cost no better than the
// bandwidth lower bound of an allreduce.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "netsim/cluster.hpp"
#include "netsim/schedules.hpp"
#include "util/units.hpp"

namespace dct::netsim {
namespace {

using Param = std::tuple<std::string, int, std::uint64_t>;

class SchedulePropertyP : public ::testing::TestWithParam<Param> {};

TEST_P(SchedulePropertyP, SimulatesWithSanePhysics) {
  const auto& [algo, nodes, payload] = GetParam();
  ClusterConfig cfg;
  cfg.nodes = nodes;
  const FatTree net = make_minsky_fabric(cfg);
  AllreduceParams params;
  params.payload_bytes = payload;
  params.ranks = nodes;
  params.reduce_bw_Bps = cfg.reduce_bw_Bps;
  params.pipeline_bytes = std::max<std::uint64_t>(64 << 10, payload / 32);

  const CommSchedule schedule = allreduce_schedule(algo, params);
  ASSERT_GT(schedule.size(), 0u);

  // Aggregate traffic of any correct allreduce: at least S·(p−1)/p·2·p/p…
  // use the loose band [S, 2·S·(p−1)] ∪ padding for the tree fan-outs.
  const double total = static_cast<double>(schedule.total_bytes());
  EXPECT_GE(total, static_cast<double>(payload));
  EXPECT_LE(total, 2.5 * static_cast<double>(payload) * nodes);

  const auto result = simulate(net, schedule, sim_options_for(algo));
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_GT(result.flows, 0u);
  EXPECT_LE(result.max_link_utilization, 1.0 + 1e-6);

  // No algorithm can beat the injection lower bound: some rank must
  // send at least S·(p−1)/p bytes through its NIC (2 rails).
  const double nic_bw = 2.0 * gbps_to_bytes_per_sec(cfg.rail_gbps);
  const double lower =
      static_cast<double>(payload) * (nodes - 1) / nodes / nic_bw;
  EXPECT_GE(result.makespan_s, 0.5 * lower) << "suspiciously fast";

  // Monotone in payload.
  AllreduceParams smaller = params;
  smaller.payload_bytes = payload / 2;
  const auto small_result = simulate(net, allreduce_schedule(algo, smaller),
                                     sim_options_for(algo));
  EXPECT_LE(small_result.makespan_s, result.makespan_s * 1.02);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SchedulePropertyP,
    ::testing::Combine(
        ::testing::Values("ring", "bucket_ring", "multiring", "multicolor",
                          "multicolor2", "multicolor8", "recursive_halving",
                          "naive", "halving_doubling", "hierarchical",
                          "hierarchical:8", "torus", "torus:2"),
        ::testing::Values(4, 8, 16, 27),
        ::testing::Values(std::uint64_t{2} << 20, std::uint64_t{16} << 20)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param) + "_n" +
                         std::to_string(std::get<1>(info.param)) + "_" +
                         std::to_string(std::get<2>(info.param) >> 20) + "MB";
      std::replace(name.begin(), name.end(), ':', '_');
      return name;
    });

TEST(ScheduleProperty, MulticolorBeatsSingleColorEverywhere) {
  for (int nodes : {8, 16, 32}) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    const double t4 = allreduce_time_s(cfg, "multicolor4", 32 << 20);
    const double t1 = allreduce_time_s(cfg, "multicolor1", 32 << 20);
    EXPECT_LT(t4, t1) << nodes;
  }
}

TEST(ScheduleProperty, MultiringBeatsPlainRing) {
  // The §5.2 "multi-color ring": spreading the root hot-spots must beat
  // the single reduce-to-root ring.
  for (int nodes : {8, 16, 32}) {
    ClusterConfig cfg;
    cfg.nodes = nodes;
    const double t_multi = allreduce_time_s(cfg, "multiring", 64 << 20);
    const double t_single = allreduce_time_s(cfg, "ring", 64 << 20);
    EXPECT_LT(t_multi, t_single) << nodes;
  }
}

TEST(ScheduleProperty, BucketRingIsBandwidthCompetitive) {
  // The NCCL-style exchange must comfortably beat the paper's
  // reduce-to-root ring and land within ~2× of multicolor.
  ClusterConfig cfg;
  cfg.nodes = 16;
  const std::uint64_t payload = 93 << 20;
  const double t_bucket = allreduce_time_s(cfg, "bucket_ring", payload);
  const double t_ring = allreduce_time_s(cfg, "ring", payload);
  const double t_mc = allreduce_time_s(cfg, "multicolor", payload);
  EXPECT_LT(t_bucket, t_ring);
  EXPECT_LT(t_bucket, 2.5 * t_mc);
}

}  // namespace
}  // namespace dct::netsim
