// Tests for the allreduce module: color-tree structural properties
// (including the paper's Figure 2 instance), correctness of every
// algorithm across rank counts and payload sizes, and traffic accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "allreduce/algorithm.hpp"
#include "allreduce/algorithms_impl.hpp"
#include "allreduce/color_tree.hpp"
#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace dct::allreduce {
namespace {

// ---------------------------------------------------------------- trees

TEST(ColorTree, ReproducesPaperFigure2) {
  // 4 colors on 8 nodes: color 0 rooted at 0 with interior {0,1};
  // color 1 rooted at 2 with interior {2,3}; etc.
  for (int c = 0; c < 4; ++c) {
    ColorTree tree(8, 4, c);
    EXPECT_EQ(tree.root(), 2 * c);
    const auto interior = tree.interior_ranks();
    EXPECT_EQ(interior, (std::vector<int>{2 * c, 2 * c + 1}));
    EXPECT_EQ(tree.arity(), 4);
  }
  // Color 0 concretely: root 0 has children 1,2,3,4; node 1 has 5,6,7.
  ColorTree t0(8, 4, 0);
  EXPECT_EQ(t0.children(0), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(t0.children(1), (std::vector<int>{5, 6, 7}));
  EXPECT_TRUE(t0.children(5).empty());
}

TEST(ColorTree, SpanningTreeInvariants) {
  for (int p : {1, 2, 3, 5, 8, 13, 16, 32, 61}) {
    for (int k : {1, 2, 3, 4, 8}) {
      if (k > p) continue;
      for (int c = 0; c < k; ++c) {
        ColorTree tree(p, k, c);
        // Exactly one root; every other rank reaches it via parent chain.
        int roots = 0;
        for (int r = 0; r < p; ++r) {
          if (tree.parent(r) == -1) {
            ++roots;
            EXPECT_EQ(tree.root(), r);
          } else {
            EXPECT_LE(tree.depth(r), p);
          }
        }
        EXPECT_EQ(roots, 1);
        // Parent/child relations are mutually consistent and every rank
        // except the root is someone's child exactly once.
        std::vector<int> child_count(static_cast<std::size_t>(p), 0);
        for (int r = 0; r < p; ++r) {
          for (int ch : tree.children(r)) {
            EXPECT_EQ(tree.parent(ch), r);
            ++child_count[static_cast<std::size_t>(ch)];
          }
        }
        for (int r = 0; r < p; ++r) {
          EXPECT_EQ(child_count[static_cast<std::size_t>(r)],
                    r == tree.root() ? 0 : 1);
        }
      }
    }
  }
}

TEST(ColorTree, InteriorNodesDisjointAcrossColors) {
  // The load-bearing property of the paper's algorithm: summing nodes of
  // different colors never coincide — for every (p, k) with k ≤ p.
  for (int p = 1; p <= 64; ++p) {
    for (int k = 1; k <= std::min(p, 8); ++k) {
      std::set<int> seen;
      for (int c = 0; c < k; ++c) {
        ColorTree tree(p, k, c);
        for (int r = 0; r < p; ++r) {
          if (!tree.is_interior(r)) continue;
          const bool inserted = seen.insert(r).second;
          ASSERT_TRUE(inserted) << "interior rank " << r
                                << " reused across colors, p=" << p
                                << " k=" << k << " color=" << c;
        }
      }
    }
  }
}

TEST(ColorTree, RootsDistinctAcrossColors) {
  for (int p : {4, 8, 12, 16, 32}) {
    const int k = 4;
    std::set<int> roots;
    for (int c = 0; c < k; ++c) roots.insert(ColorTree(p, k, c).root());
    EXPECT_EQ(roots.size(), static_cast<std::size_t>(k));
  }
}

// ----------------------------------------------------------- algorithms

struct Case {
  std::string algo;
  int ranks;
  std::size_t elems;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::vector<std::string> algos{
      "naive",      "recursive_halving", "openmpi_default",
      "ring",       "multicolor",        "multicolor1",
      "multicolor2", "multiring",        "multiring2",
      "bucket_ring", "halving_doubling", "hierarchical",
      "hierarchical:2", "torus",         "torus:4"};
  for (const auto& a : algos) {
    for (int p : {1, 2, 3, 4, 5, 7, 8, 12, 16}) {
      for (std::size_t n : {std::size_t{1}, std::size_t{13},
                            std::size_t{1000}, std::size_t{65536 + 7}}) {
        cases.push_back({a, p, n});
      }
    }
  }
  return cases;
}

class AllreduceP : public ::testing::TestWithParam<Case> {};

TEST_P(AllreduceP, SumsMatchReference) {
  const auto& c = GetParam();
  auto algo = make_algorithm(c.algo);
  // Deterministic per-rank inputs; reference computed serially in double.
  std::vector<std::vector<float>> inputs(static_cast<std::size_t>(c.ranks));
  for (int r = 0; r < c.ranks; ++r) {
    Rng rng(1000 + static_cast<std::uint64_t>(r));
    auto& v = inputs[static_cast<std::size_t>(r)];
    v.resize(c.elems);
    for (auto& x : v) x = rng.next_float() * 2.0f - 1.0f;
  }
  std::vector<double> reference(c.elems, 0.0);
  for (const auto& v : inputs) {
    for (std::size_t i = 0; i < c.elems; ++i) reference[i] += v[i];
  }

  std::vector<std::vector<float>> outputs(static_cast<std::size_t>(c.ranks));
  simmpi::Runtime::execute(c.ranks, [&](simmpi::Communicator& comm) {
    auto data = inputs[static_cast<std::size_t>(comm.rank())];
    algo->run(comm, std::span<float>(data));
    outputs[static_cast<std::size_t>(comm.rank())] = std::move(data);
  });

  // Summation order differs per algorithm; float32 tolerance scales with
  // the number of ranks.
  const double tol = 1e-5 * c.ranks;
  for (int r = 0; r < c.ranks; ++r) {
    const auto& out = outputs[static_cast<std::size_t>(r)];
    ASSERT_EQ(out.size(), c.elems);
    for (std::size_t i = 0; i < c.elems; i += std::max<std::size_t>(1, c.elems / 64)) {
      ASSERT_NEAR(out[i], reference[i], tol)
          << "algo=" << c.algo << " ranks=" << c.ranks << " i=" << i;
    }
    // All ranks agree bit-for-bit with rank 0 (same deterministic order).
    if (r > 0) {
      const auto& out0 = outputs[0];
      for (std::size_t i = 0; i < c.elems; i += 97) {
        ASSERT_EQ(out[i], out0[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllreduceP, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.algo + "_p" +
                         std::to_string(info.param.ranks) + "_n" +
                         std::to_string(info.param.elems);
      std::replace(name.begin(), name.end(), ':', '_');
      return name;
    });

TEST(Allreduce, ExactForIntegers) {
  // Dyadic values sum exactly in float regardless of order, so every
  // algorithm must agree exactly.
  for (const auto& name : {"naive", "recursive_halving", "ring",
                           "multicolor"}) {
    auto algo = make_algorithm(name);
    const int p = 8;
    const std::size_t n = 4096;
    simmpi::Runtime::execute(p, [&](simmpi::Communicator& comm) {
      std::vector<float> data(n);
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = static_cast<float>((comm.rank() + 1) * (i % 32));
      }
      algo->run(comm, std::span<float>(data));
      const float rank_sum = static_cast<float>(p * (p + 1) / 2);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(data[i], rank_sum * static_cast<float>(i % 32));
      }
    });
  }
}

TEST(Allreduce, MultiColorTrafficSplitsAcrossColors) {
  // With k colors each rank is interior in at most one tree, so its send
  // volume must stay well below sending the whole payload up k trees.
  const int p = 8;
  const std::size_t n = 1 << 16;
  MultiColorAllreduce algo(4, 4096);
  std::vector<RankTraffic> traffic(p);
  simmpi::Runtime::execute(p, [&](simmpi::Communicator& comm) {
    std::vector<float> data(n, 1.0f);
    algo.run(comm, std::span<float>(data),
             &traffic[static_cast<std::size_t>(comm.rank())]);
  });
  const std::uint64_t payload = n * sizeof(float);
  for (int r = 0; r < p; ++r) {
    const auto& t = traffic[static_cast<std::size_t>(r)];
    // A leaf in all k trees sends its k chunks (≈ payload) in reduce and
    // nothing in bcast; interior nodes add their bcast fan-out of one
    // chunk. Nothing should approach k × payload.
    EXPECT_GE(t.bytes_sent, payload / 2);
    EXPECT_LE(t.bytes_sent, 2 * payload);
  }
}

TEST(Allreduce, RingTrafficIsTwoPayloadsInterior) {
  const int p = 4;
  const std::size_t n = 10000;
  PipelinedRingAllreduce algo(1024);
  std::vector<RankTraffic> traffic(p);
  simmpi::Runtime::execute(p, [&](simmpi::Communicator& comm) {
    std::vector<float> data(n, 1.0f);
    algo.run(comm, std::span<float>(data),
             &traffic[static_cast<std::size_t>(comm.rank())]);
  });
  const std::uint64_t payload = n * sizeof(float);
  // Ends of the chain send once (reduce or bcast); middle ranks twice.
  EXPECT_EQ(traffic[0].bytes_sent, payload);          // root: bcast only
  EXPECT_EQ(traffic[p - 1].bytes_sent, payload);      // tail: reduce only
  for (int r = 1; r < p - 1; ++r) {
    EXPECT_EQ(traffic[static_cast<std::size_t>(r)].bytes_sent, 2 * payload);
  }
}

TEST(Allreduce, ReduceFlopsAccounted) {
  // Total additions across ranks must equal (p-1) × n for any
  // sum-allreduce that adds each contribution exactly once.
  const int p = 6;
  const std::size_t n = 5000;
  for (const auto& name : {"ring", "multicolor", "recursive_halving",
                           "multiring", "bucket_ring"}) {
    auto algo = make_algorithm(name);
    std::vector<RankTraffic> traffic(p);
    simmpi::Runtime::execute(p, [&](simmpi::Communicator& comm) {
      std::vector<float> data(n, 1.0f);
      algo->run(comm, std::span<float>(data),
                &traffic[static_cast<std::size_t>(comm.rank())]);
    });
    std::uint64_t total = 0;
    for (const auto& t : traffic) total += t.reduce_flops;
    EXPECT_EQ(total, static_cast<std::uint64_t>(p - 1) * n) << name;
  }
}

TEST(Registry, KnownNamesConstruct) {
  for (const auto& name : algorithm_names()) {
    EXPECT_NE(make_algorithm(name), nullptr);
  }
  EXPECT_EQ(make_algorithm("multicolor8")->name(), "multicolor8");
  EXPECT_EQ(make_algorithm("multiring2")->name(), "multiring2");
  EXPECT_THROW(make_algorithm("nope"), CheckError);
  EXPECT_THROW(make_algorithm("multicolorx"), CheckError);
}

TEST(Allreduce, WorksOnSplitCommunicator) {
  // The algorithms must run on any communicator, not just world.
  simmpi::Runtime::execute(8, [](simmpi::Communicator& world) {
    auto sub = world.split(world.rank() % 2, world.rank());
    MultiColorAllreduce algo(2, 512);
    std::vector<float> data(1000, static_cast<float>(world.rank()));
    algo.run(sub, std::span<float>(data));
    // Sum over my parity class: ranks {0,2,4,6} or {1,3,5,7}.
    const float expect = (world.rank() % 2 == 0) ? 12.0f : 16.0f;
    for (float v : data) ASSERT_EQ(v, expect);
  });
}

TEST(Allreduce, EmptyPayloadIsNoop) {
  for (const auto& name : {"naive", "ring", "multicolor",
                           "recursive_halving"}) {
    auto algo = make_algorithm(name);
    simmpi::Runtime::execute(4, [&](simmpi::Communicator& comm) {
      std::vector<float> data;
      algo->run(comm, std::span<float>(data));
    });
  }
}

}  // namespace
}  // namespace dct::allreduce
