// Tests for the in-process MPI runtime: point-to-point semantics,
// collectives across many rank counts, communicator split/dup, and
// failure propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "simmpi/runtime.hpp"
#include "util/rng.hpp"

namespace dct::simmpi {
namespace {

TEST(P2P, SendRecvValue) {
  Runtime::execute(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(12345, 1, 7);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 7), 12345);
    }
  });
}

TEST(P2P, TagsMatchSelectively) {
  Runtime::execute(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 1, /*tag=*/10);
      comm.send_value<int>(2, 1, /*tag=*/20);
    } else {
      // Receive out of send order by tag.
      EXPECT_EQ(comm.recv_value<int>(0, 20), 2);
      EXPECT_EQ(comm.recv_value<int>(0, 10), 1);
    }
  });
}

TEST(P2P, NonOvertakingSameTag) {
  Runtime::execute(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send_value<int>(i, 1, 3);
    } else {
      for (int i = 0; i < 100; ++i) EXPECT_EQ(comm.recv_value<int>(0, 3), i);
    }
  });
}

TEST(P2P, AnySourceAnyTag) {
  Runtime::execute(3, [](Communicator& comm) {
    if (comm.rank() != 0) {
      comm.send_value<int>(comm.rank() * 100, 0, comm.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        std::int32_t v = 0;
        Status st = comm.recv(std::span<std::int32_t>(&v, 1), kAnySource,
                              kAnyTag);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_EQ(st.tag, st.source);
        sum += v;
      }
      EXPECT_EQ(sum, 300);
    }
  });
}

TEST(P2P, ProbeReportsSize) {
  Runtime::execute(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload(37, 1.5);
      comm.send(std::span<const double>(payload), 1, 4);
    } else {
      Status st = comm.probe(0, 4);
      EXPECT_EQ(st.bytes, 37 * sizeof(double));
      std::vector<double> buf(37);
      comm.recv(std::span<double>(buf), 0, 4);
      EXPECT_DOUBLE_EQ(buf[36], 1.5);
    }
  });
}

TEST(P2P, RecvAnyBytesUnknownSize) {
  Runtime::execute(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> data(123, std::byte{0xAB});
      comm.send_bytes(data, 1, 0);
    } else {
      Status st;
      auto data = comm.recv_any_bytes(0, 0, &st);
      EXPECT_EQ(data.size(), 123u);
      EXPECT_EQ(st.bytes, 123u);
      EXPECT_EQ(data[50], std::byte{0xAB});
    }
  });
}

TEST(P2P, SendRecvExchange) {
  Runtime::execute(2, [](Communicator& comm) {
    const int me = comm.rank();
    const int peer = 1 - me;
    std::int64_t out = me + 100, in = -1;
    comm.sendrecv(std::span<const std::int64_t>(&out, 1), peer, 9,
                  std::span<std::int64_t>(&in, 1), peer, 9);
    EXPECT_EQ(in, peer + 100);
  });
}

TEST(P2P, IrecvCompletesOnWait) {
  Runtime::execute(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(55, 1, 1);
    } else {
      int v = 0;
      auto req = comm.irecv(std::span<int>(&v, 1), 0, 1);
      EXPECT_FALSE(req.done());
      req.wait();
      EXPECT_TRUE(req.done());
      EXPECT_EQ(v, 55);
    }
  });
}

TEST(P2P, IsendIsEagerAndCompletedAtBirth) {
  // The mailbox transport buffers eagerly: isend copies the payload and
  // the request is complete immediately — wait() never blocks and the
  // buffer is reusable right away.
  Runtime::execute(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      int v = 77;
      auto req = comm.isend(std::span<const int>(&v, 1), 1, 3);
      EXPECT_TRUE(req.done());
      EXPECT_TRUE(req.test());
      v = -1;  // must not affect the in-flight message
      req.wait();
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 3), 77);
    }
  });
}

TEST(P2P, IrecvTestPollsWithoutBlocking) {
  Runtime::execute(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      // Rank 1 signals it has polled at least once before we send.
      comm.recv_value<int>(1, 0);
      comm.send_value<int>(66, 1, 5);
    } else {
      int v = 0;
      auto req = comm.irecv(std::span<int>(&v, 1), 0, 5);
      EXPECT_FALSE(req.test());  // nothing sent yet: polls false, no block
      comm.send_value<int>(1, 0, 0);
      while (!req.test()) {
      }
      EXPECT_TRUE(req.done());
      EXPECT_EQ(req.status().bytes, sizeof(int));
      EXPECT_EQ(v, 66);
      req.wait();  // idempotent after completion
    }
  });
}

TEST(P2P, TryProbeReportsPendingMessage) {
  Runtime::execute(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value<std::int64_t>(5, 1, 11);
      comm.barrier();
    } else {
      EXPECT_FALSE(comm.try_probe(0, 99).has_value());  // wrong tag
      comm.barrier();  // now the tag-11 message is definitely queued
      const auto st = comm.try_probe(0, 11);
      ASSERT_TRUE(st.has_value());
      EXPECT_EQ(st->source, 0);
      EXPECT_EQ(st->tag, 11);
      EXPECT_EQ(st->bytes, sizeof(std::int64_t));
      // Probing does not consume: the receive still sees the payload.
      EXPECT_EQ(comm.recv_value<std::int64_t>(0, 11), 5);
    }
  });
}

TEST(P2P, WaitAllDrainsMixedRequests) {
  Runtime::execute(2, [](Communicator& comm) {
    constexpr int n = 8;
    if (comm.rank() == 0) {
      std::vector<int> out(n);
      std::vector<Request> reqs;
      for (int i = 0; i < n; ++i) {
        out[i] = 1000 + i;
        reqs.push_back(comm.isend(std::span<const int>(&out[i], 1), 1, i));
      }
      wait_all(reqs);
      for (auto& r : reqs) EXPECT_TRUE(r.done());
    } else {
      std::vector<int> in(n, -1);
      std::vector<Request> reqs;
      for (int i = 0; i < n; ++i) {
        reqs.push_back(comm.irecv(std::span<int>(&in[i], 1), 0, i));
      }
      wait_all(std::span<Request>(reqs));
      for (int i = 0; i < n; ++i) EXPECT_EQ(in[i], 1000 + i);
    }
  });
}

class CollectiveP : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveP, Barrier) {
  const int p = GetParam();
  std::atomic<int> phase{0};
  Runtime::execute(p, [&](Communicator& comm) {
    phase++;
    comm.barrier();
    // After the barrier every rank must have incremented.
    EXPECT_EQ(phase.load(), p);
    comm.barrier();
  });
}

TEST_P(CollectiveP, BcastFromEveryRoot) {
  const int p = GetParam();
  Runtime::execute(p, [&](Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::uint32_t> data(17, 0);
      if (comm.rank() == root) {
        for (std::size_t i = 0; i < data.size(); ++i) {
          data[i] = static_cast<std::uint32_t>(root * 1000 + i);
        }
      }
      comm.bcast(std::span<std::uint32_t>(data), root);
      for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_EQ(data[i], static_cast<std::uint32_t>(root * 1000 + i));
      }
    }
  });
}

TEST_P(CollectiveP, ReduceSumToEveryRoot) {
  const int p = GetParam();
  Runtime::execute(p, [&](Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> data(8);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = comm.rank() + static_cast<int>(i);
      }
      comm.reduce_inplace(std::span<std::int64_t>(data), root,
                          [](std::int64_t a, std::int64_t b) { return a + b; });
      if (comm.rank() == root) {
        const std::int64_t rank_sum = std::int64_t(p) * (p - 1) / 2;
        for (std::size_t i = 0; i < data.size(); ++i) {
          ASSERT_EQ(data[i], rank_sum + std::int64_t(p) * static_cast<int>(i));
        }
      }
      comm.barrier();  // keep roots in lockstep across iterations
    }
  });
}

TEST_P(CollectiveP, AllreduceNaive) {
  const int p = GetParam();
  Runtime::execute(p, [&](Communicator& comm) {
    std::vector<double> data(33, static_cast<double>(comm.rank() + 1));
    comm.allreduce_inplace(std::span<double>(data),
                           [](double a, double b) { return a + b; });
    const double expect = p * (p + 1) / 2.0;
    for (double v : data) ASSERT_DOUBLE_EQ(v, expect);
  });
}

TEST_P(CollectiveP, AllgatherOrdersBlocks) {
  const int p = GetParam();
  Runtime::execute(p, [&](Communicator& comm) {
    std::vector<std::int32_t> mine(3, comm.rank());
    std::vector<std::int32_t> all(3 * static_cast<std::size_t>(p));
    comm.allgather(std::span<const std::int32_t>(mine),
                   std::span<std::int32_t>(all));
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(all[static_cast<std::size_t>(r) * 3 + i], r);
      }
    }
  });
}

TEST_P(CollectiveP, AllgathervRaggedBlocks) {
  const int p = GetParam();
  Runtime::execute(p, [&](Communicator& comm) {
    // Rank r contributes r+1 elements, all equal to r.
    std::vector<std::size_t> counts(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] = static_cast<std::size_t>(r + 1);
      total += static_cast<std::size_t>(r + 1);
    }
    std::vector<std::int32_t> mine(static_cast<std::size_t>(comm.rank() + 1),
                                   comm.rank());
    std::vector<std::int32_t> all(total);
    comm.allgatherv(std::span<const std::int32_t>(mine),
                    std::span<std::int32_t>(all),
                    std::span<const std::size_t>(counts));
    std::size_t off = 0;
    for (int r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
        ASSERT_EQ(all[off++], r);
      }
    }
  });
}

TEST_P(CollectiveP, GatherScatterRoundTrip) {
  const int p = GetParam();
  Runtime::execute(p, [&](Communicator& comm) {
    const int root = p - 1;
    std::vector<std::int32_t> mine{comm.rank() * 2, comm.rank() * 2 + 1};
    std::vector<std::int32_t> all(static_cast<std::size_t>(2 * p));
    comm.gather(std::span<const std::int32_t>(mine),
                std::span<std::int32_t>(all), root);
    if (comm.rank() == root) {
      for (int i = 0; i < 2 * p; ++i) ASSERT_EQ(all[static_cast<std::size_t>(i)], i);
      // Reverse it and scatter back.
      std::reverse(all.begin(), all.end());
    }
    std::vector<std::int32_t> back(2);
    comm.scatter(std::span<const std::int32_t>(all),
                 std::span<std::int32_t>(back), root);
    EXPECT_EQ(back[0], 2 * p - 1 - comm.rank() * 2);
    EXPECT_EQ(back[1], 2 * p - 2 - comm.rank() * 2);
  });
}

TEST_P(CollectiveP, AlltoallTransposes) {
  const int p = GetParam();
  Runtime::execute(p, [&](Communicator& comm) {
    // Element for dest d from rank r encodes (r, d).
    std::vector<std::int32_t> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      send[static_cast<std::size_t>(d)] = comm.rank() * 1000 + d;
    }
    std::vector<std::int32_t> recv(static_cast<std::size_t>(p));
    comm.alltoall(std::span<const std::int32_t>(send),
                  std::span<std::int32_t>(recv));
    for (int r = 0; r < p; ++r) {
      ASSERT_EQ(recv[static_cast<std::size_t>(r)], r * 1000 + comm.rank());
    }
  });
}

TEST_P(CollectiveP, AlltoallvRaggedCounts) {
  const int p = GetParam();
  Runtime::execute(p, [&](Communicator& comm) {
    const int me = comm.rank();
    // Rank r sends (r + d) % 3 elements to dest d, each equal to r*100+d.
    auto count_for = [](int src, int dst) {
      return static_cast<std::size_t>((src + dst) % 3);
    };
    std::vector<std::size_t> scounts(static_cast<std::size_t>(p)),
        sdispls(static_cast<std::size_t>(p)), rcounts(static_cast<std::size_t>(p)),
        rdispls(static_cast<std::size_t>(p));
    std::size_t stot = 0, rtot = 0;
    for (int d = 0; d < p; ++d) {
      scounts[static_cast<std::size_t>(d)] = count_for(me, d);
      sdispls[static_cast<std::size_t>(d)] = stot;
      stot += scounts[static_cast<std::size_t>(d)];
      rcounts[static_cast<std::size_t>(d)] = count_for(d, me);
      rdispls[static_cast<std::size_t>(d)] = rtot;
      rtot += rcounts[static_cast<std::size_t>(d)];
    }
    std::vector<std::int32_t> send(stot);
    for (int d = 0; d < p; ++d) {
      for (std::size_t i = 0; i < scounts[static_cast<std::size_t>(d)]; ++i) {
        send[sdispls[static_cast<std::size_t>(d)] + i] = me * 100 + d;
      }
    }
    std::vector<std::int32_t> recv(rtot, -1);
    comm.alltoallv(std::span<const std::int32_t>(send),
                   std::span<const std::size_t>(scounts),
                   std::span<const std::size_t>(sdispls),
                   std::span<std::int32_t>(recv),
                   std::span<const std::size_t>(rcounts),
                   std::span<const std::size_t>(rdispls));
    for (int s = 0; s < p; ++s) {
      for (std::size_t i = 0; i < rcounts[static_cast<std::size_t>(s)]; ++i) {
        ASSERT_EQ(recv[rdispls[static_cast<std::size_t>(s)] + i], s * 100 + me);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(CommSplit, GroupsByColorOrderedByKey) {
  Runtime::execute(8, [](Communicator& comm) {
    // Two colors: even/odd ranks; key reverses order inside the group.
    const int color = comm.rank() % 2;
    const int key = -comm.rank();
    Communicator sub = comm.split(color, key);
    EXPECT_EQ(sub.size(), 4);
    // Highest old rank gets new rank 0 within its color.
    const int expected_rank = (7 - comm.rank()) / 2;
    EXPECT_EQ(sub.rank(), expected_rank);
    // The sub-communicator must be fully functional.
    std::vector<std::int32_t> v{comm.rank()};
    auto gathered = sub.allgather_value<std::int32_t>(comm.rank());
    // Members are the 4 ranks of my parity, descending.
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(gathered[static_cast<std::size_t>(i)] % 2, color);
    }
    EXPECT_TRUE(std::is_sorted(gathered.rbegin(), gathered.rend()));
  });
}

TEST(CommSplit, SingleColorKeepsOrder) {
  Runtime::execute(5, [](Communicator& comm) {
    Communicator sub = comm.split(0, comm.rank());
    EXPECT_EQ(sub.size(), 5);
    EXPECT_EQ(sub.rank(), comm.rank());
  });
}

TEST(CommSplit, SubCommTrafficDoesNotLeak) {
  Runtime::execute(4, [](Communicator& comm) {
    Communicator sub = comm.split(comm.rank() / 2, comm.rank());
    // Same tag, same comm-rank numbering in both subgroups — traffic must
    // stay within each context.
    if (sub.rank() == 0) {
      comm.barrier();
      sub.send_value<int>(comm.rank(), 1, 42);
    } else {
      comm.barrier();
      const int got = sub.recv_value<int>(0, 42);
      EXPECT_EQ(got, (comm.rank() / 2) * 2);  // rank 0 of my own group
    }
  });
}

TEST(CommDup, IndependentContext) {
  Runtime::execute(3, [](Communicator& comm) {
    Communicator dup = comm.dup();
    EXPECT_EQ(dup.size(), comm.size());
    EXPECT_EQ(dup.rank(), comm.rank());
    EXPECT_NE(dup.context(), comm.context());
    // Message on dup is not received on comm.
    if (comm.rank() == 0) {
      dup.send_value<int>(7, 1, 5);
      comm.send_value<int>(8, 1, 5);
    } else if (comm.rank() == 1) {
      EXPECT_EQ(comm.recv_value<int>(0, 5), 8);
      EXPECT_EQ(dup.recv_value<int>(0, 5), 7);
    }
  });
}

TEST(Runtime, RankExceptionPropagates) {
  EXPECT_THROW(
      Runtime::execute(4,
                       [](Communicator& comm) {
                         if (comm.rank() == 2) {
                           throw std::runtime_error("rank 2 exploded");
                         }
                         // Other ranks block; must be woken by abort.
                         comm.barrier();
                         comm.barrier();
                         comm.barrier();
                       }),
      std::runtime_error);
}

TEST(Runtime, TrafficCountersAdvance) {
  Runtime rt(2);
  const auto before = rt.transport().total_bytes_sent();
  rt.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<std::byte> blob(1000, std::byte{1});
      comm.send_bytes(blob, 1, 0);
    } else {
      std::vector<std::byte> blob(1000);
      comm.recv_bytes(std::span<std::byte>(blob), 0, 0);
    }
  });
  EXPECT_GE(rt.transport().total_bytes_sent() - before, 1000u);
  EXPECT_GE(rt.transport().total_messages(), 1u);
}

TEST(Runtime, SingleRankWorks) {
  Runtime::execute(1, [](Communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.barrier();
    std::vector<int> v{41};
    comm.bcast(std::span<int>(v), 0);
    comm.allreduce_inplace(std::span<int>(v),
                           [](int a, int b) { return a + b; });
    EXPECT_EQ(v[0], 41);
    auto g = comm.allgather_value<int>(9);
    EXPECT_EQ(g, std::vector<int>{9});
  });
}

TEST(Runtime, LargePayloadIntegrity) {
  Runtime::execute(2, [](Communicator& comm) {
    constexpr std::size_t n = 1 << 20;  // 4 MiB of int32
    if (comm.rank() == 0) {
      std::vector<std::int32_t> big(n);
      std::iota(big.begin(), big.end(), 0);
      comm.send(std::span<const std::int32_t>(big), 1, 0);
    } else {
      std::vector<std::int32_t> big(n);
      comm.recv(std::span<std::int32_t>(big), 0, 0);
      for (std::size_t i = 0; i < n; i += 4099) {
        ASSERT_EQ(big[i], static_cast<std::int32_t>(i));
      }
    }
  });
}

}  // namespace
}  // namespace dct::simmpi
