// Tests for the composite layers (residual, windowed avg-pool, dropout,
// branch concat), the MiniResNet, and checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "nn/checkpoint.hpp"
#include "nn/composite.hpp"
#include "nn/small_cnn.hpp"
#include "nn/sgd.hpp"
#include "tensor/ops.hpp"

namespace dct::nn {
namespace {

using tensor::Tensor;

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng,
                     float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = (rng.next_float() * 2.0f - 1.0f) * scale;
  }
  return t;
}

float weighted_sum(const Tensor& y, const Tensor& w) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < y.numel(); ++i) acc += y[i] * w[i];
  return acc;
}

void check_input_gradient(Layer& layer, Tensor x, double tol = 8e-2) {
  Rng rng(99);
  Tensor y = layer.forward(x, true);
  Tensor w = random_tensor(y.shape(), rng);
  Tensor grad_in = layer.backward(w);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < x.numel();
       i += std::max<std::int64_t>(1, x.numel() / 19)) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float fp = weighted_sum(layer.forward(xp, true), w);
    const float fm = weighted_sum(layer.forward(xm, true), w);
    ASSERT_NEAR((fp - fm) / (2.0 * eps), grad_in[i], tol) << "index " << i;
  }
}

TEST(Residual, IdentitySkipAddsInput) {
  // Body = zero-weight conv → residual output equals the skip path.
  Rng rng(1);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(2, 2, 3, 1, 1, rng, false);
  for (Param* p : body->params()) p->value.zero();
  Residual res(std::move(body));
  Rng xr(2);
  Tensor x = random_tensor({1, 2, 4, 4}, xr);
  Tensor y = res.forward(x, true);
  EXPECT_LT(y.max_abs_diff(x), 1e-6f);
}

TEST(Residual, GradCheckIdentitySkip) {
  Rng rng(3);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(2, 2, 3, 1, 1, rng, false);
  Residual res(std::move(body));
  Rng xr(4);
  check_input_gradient(res, random_tensor({2, 2, 4, 4}, xr));
}

TEST(Residual, GradCheckProjectionSkip) {
  Rng rng(5);
  auto body = std::make_unique<Sequential>();
  body->emplace<Conv2d>(2, 4, 3, 2, 1, rng, false);
  auto proj = std::make_unique<Sequential>();
  proj->emplace<Conv2d>(2, 4, 1, 2, 0, rng, false);
  Residual res(std::move(body), std::move(proj));
  Rng xr(6);
  check_input_gradient(res, random_tensor({1, 2, 6, 6}, xr));
  EXPECT_EQ(res.params().size(), 2u);  // both convs exposed
}

TEST(AvgPool2d, AveragesWindows) {
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  AvgPool2d pool(2, 2);
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y[0], (0 + 1 + 4 + 5) / 4.0f);
  EXPECT_FLOAT_EQ(y[3], (10 + 11 + 14 + 15) / 4.0f);
}

TEST(AvgPool2d, GradCheckWithPaddingAndStride) {
  AvgPool2d pool(3, 2, 1);
  Rng rng(7);
  check_input_gradient(pool, random_tensor({2, 2, 5, 5}, rng));
}

TEST(AvgPool2d, PaperAuxHeadGeometry) {
  // GoogleNet aux head: 14×14 → 5×5/3 → 4×4.
  AvgPool2d pool(5, 3);
  Tensor x({1, 2, 14, 14});
  EXPECT_EQ(pool.forward(x, true).shape(),
            (std::vector<std::int64_t>{1, 2, 4, 4}));
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout drop(0.5f, 1);
  Rng rng(8);
  Tensor x = random_tensor({2, 3, 4, 4}, rng);
  Tensor y = drop.forward(x, /*train=*/false);
  EXPECT_TRUE(y.equals(x));
}

TEST(Dropout, TrainKeepsExpectedValue) {
  Dropout drop(0.3f, 42);
  Tensor x = tensor::Tensor::full({10000}, 1.0f);
  Tensor y = drop.forward(x, true);
  double mean = 0, zeros = 0;
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    mean += y[i];
    zeros += (y[i] == 0.0f);
  }
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 1.0, 0.05);  // inverted dropout preserves E[x]
  EXPECT_NEAR(zeros / static_cast<double>(y.numel()), 0.3, 0.03);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f, 9);
  Tensor x = tensor::Tensor::full({100}, 2.0f);
  Tensor y = drop.forward(x, true);
  Tensor g = tensor::Tensor::full({100}, 1.0f);
  Tensor gi = drop.backward(g);
  for (std::int64_t i = 0; i < 100; ++i) {
    // Gradient passes exactly where the activation passed.
    EXPECT_EQ(gi[i] == 0.0f, y[i] == 0.0f);
  }
  EXPECT_THROW(Dropout(1.0f, 1), CheckError);
}

TEST(ConcatBranches, ConcatenatesChannels) {
  Rng rng(10);
  auto cat = std::make_unique<ConcatBranches>();
  auto b1 = std::make_unique<Sequential>();
  b1->emplace<Conv2d>(2, 3, 1, 1, 0, rng, false);
  auto b2 = std::make_unique<Sequential>();
  b2->emplace<Conv2d>(2, 5, 1, 1, 0, rng, false);
  cat->add(std::move(b1)).add(std::move(b2));
  Rng xr(11);
  Tensor x = random_tensor({2, 2, 4, 4}, xr);
  Tensor y = cat->forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 8, 4, 4}));
  EXPECT_EQ(cat->params().size(), 2u);
}

TEST(ConcatBranches, GradCheck) {
  Rng rng(12);
  ConcatBranches cat;
  auto b1 = std::make_unique<Sequential>();
  b1->emplace<Conv2d>(2, 2, 3, 1, 1, rng, false);
  auto b2 = std::make_unique<Sequential>();
  b2->emplace<Conv2d>(2, 3, 1, 1, 0, rng, false);
  cat.add(std::move(b1)).add(std::move(b2));
  Rng xr(13);
  check_input_gradient(cat, random_tensor({1, 2, 4, 4}, xr));
}

TEST(MiniResNet, TrainsOnSyntheticTask) {
  Rng rng(20);
  auto net = make_mini_resnet(/*classes=*/3, /*image=*/8, rng);
  EXPECT_GT(net->param_count(), 1000);
  Sgd opt(SgdConfig{0.9f, 0.0f});
  Rng dr(21);
  Tensor x({12, 3, 8, 8});
  std::vector<std::int32_t> labels(12);
  for (std::int64_t i = 0; i < 12; ++i) {
    const auto y = static_cast<std::int32_t>(i % 3);
    labels[static_cast<std::size_t>(i)] = y;
    for (std::int64_t j = 0; j < 192; ++j) {
      x.data()[i * 192 + j] =
          static_cast<float>(y - 1) * 0.6f + dr.next_float() * 0.4f;
    }
  }
  float first = 0, last = 0;
  for (int step = 0; step < 40; ++step) {
    net->zero_grads();
    Tensor logits = net->forward(x, true);
    Tensor grad;
    const float loss = tensor::softmax_cross_entropy(logits, labels, grad);
    net->backward(grad);
    opt.step(net->params(), 0.05f);
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(Checkpoint, RoundTripsValuesAndMomentum) {
  const std::string path = testing::TempDir() + "dct_ckpt_test.bin";
  Rng rng(30);
  SmallCnnConfig cfg;
  auto net = make_small_cnn(cfg, rng);
  // Give the momentum buffers nontrivial content via a few SGD steps.
  Sgd opt;
  for (Param* p : net->params()) p->grad.fill(0.01f);
  opt.step(net->params(), 0.1f);
  save_checkpoint(*net, path);

  Rng rng2(31);  // different init
  auto restored = make_small_cnn(cfg, rng2);
  load_checkpoint(*restored, path);
  const auto n = static_cast<std::size_t>(net->param_count());
  std::vector<float> a(n), b(n);
  net->flatten_params(std::span<float>(a));
  restored->flatten_params(std::span<float>(b));
  EXPECT_EQ(a, b);
  // Momentum came back too.
  const auto pa = net->params();
  const auto pb = restored->params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->velocity.equals(pb[i]->velocity));
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMismatchedNetworkAndCorruption) {
  const std::string path = testing::TempDir() + "dct_ckpt_bad.bin";
  Rng rng(32);
  SmallCnnConfig small;
  auto net = make_small_cnn(small, rng);
  save_checkpoint(*net, path);
  // A differently-sized network must refuse the checkpoint.
  SmallCnnConfig big;
  big.classes = 20;
  auto other = make_small_cnn(big, rng);
  EXPECT_THROW(load_checkpoint(*other, path), CheckError);
  // Truncated file must refuse too.
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "DCTCKPT1 garbage";
  }
  EXPECT_THROW(load_checkpoint(*net, path), CheckError);
  EXPECT_THROW(load_checkpoint(*net, "/nonexistent/ckpt"), CheckError);
  std::remove(path.c_str());
}

TEST(Checkpoint, DetectsSingleBitRotViaCrc) {
  const std::string path = testing::TempDir() + "dct_ckpt_rot.bin";
  Rng rng(33);
  SmallCnnConfig cfg;
  auto net = make_small_cnn(cfg, rng);
  save_checkpoint(*net, path);
  // The atomic write leaves no tmp file behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  // Flip one bit in the middle of the payload — parameter counts and
  // magic still parse, only the CRC can catch this.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long mid = std::ftell(f) / 2;
    std::fseek(f, mid, SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, mid, SEEK_SET);
    std::fputc(c ^ 0x10, f);
    std::fclose(f);
  }
  EXPECT_THROW(load_checkpoint(*net, path), CheckError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dct::nn
