// Tests for the nn module: per-layer finite-difference gradient checks,
// SGD semantics, the paper's LR schedule, model construction
// determinism, gradient flattening, real end-to-end training of the
// SmallCNN, and the ResNet-50 / GoogleNetBN spec accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "nn/lr_schedule.hpp"
#include "nn/model_spec.hpp"
#include "nn/sgd.hpp"
#include "nn/small_cnn.hpp"
#include "util/units.hpp"

namespace dct::nn {
namespace {

using tensor::Tensor;

Tensor random_tensor(std::vector<std::int64_t> shape, Rng& rng,
                     float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = (rng.next_float() * 2.0f - 1.0f) * scale;
  }
  return t;
}

/// Scalar objective: sum of layer output elements weighted by a fixed
/// random tensor (gives dL/dy = w, nontrivial everywhere).
float weighted_sum(const Tensor& y, const Tensor& w) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < y.numel(); ++i) acc += y[i] * w[i];
  return acc;
}

/// Check d(weighted_sum ∘ layer)/d(input) via central differences.
void check_input_gradient(Layer& layer, Tensor x, double tol = 5e-2) {
  Rng rng(99);
  Tensor y = layer.forward(x, /*train=*/true);
  Tensor w = random_tensor(y.shape(), rng);
  Tensor grad_in = layer.backward(w);
  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < x.numel();
       i += std::max<std::int64_t>(1, x.numel() / 23)) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float fp = weighted_sum(layer.forward(xp, true), w);
    const float fm = weighted_sum(layer.forward(xm, true), w);
    const double numeric = (fp - fm) / (2.0 * eps);
    ASSERT_NEAR(numeric, grad_in[i], tol) << "input index " << i;
  }
}

/// Check parameter gradients of a layer via central differences.
void check_param_gradients(Layer& layer, const Tensor& x, double tol = 5e-2) {
  Rng rng(77);
  Tensor y = layer.forward(x, true);
  Tensor w = random_tensor(y.shape(), rng);
  layer.backward(w);
  // Snapshot analytic grads before we perturb.
  std::vector<Tensor> analytic;
  for (Param* p : layer.params()) analytic.push_back(p->grad);
  const float eps = 1e-2f;
  std::size_t pi = 0;
  for (Param* p : layer.params()) {
    for (std::int64_t i = 0; i < p->value.numel();
         i += std::max<std::int64_t>(1, p->value.numel() / 17)) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const float fp = weighted_sum(layer.forward(x, true), w);
      p->value[i] = saved - eps;
      const float fm = weighted_sum(layer.forward(x, true), w);
      p->value[i] = saved;
      const double numeric = (fp - fm) / (2.0 * eps);
      ASSERT_NEAR(numeric, analytic[pi][i], tol)
          << layer.name() << " param " << pi << " index " << i;
    }
    ++pi;
  }
}

TEST(GradCheck, Conv2d) {
  Rng rng(1);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  check_input_gradient(conv, random_tensor({2, 2, 5, 5}, rng));
  check_param_gradients(conv, random_tensor({2, 2, 5, 5}, rng));
}

TEST(GradCheck, Conv2dStrided) {
  Rng rng(2);
  Conv2d conv(1, 2, 3, 2, 1, rng);
  check_input_gradient(conv, random_tensor({1, 1, 6, 6}, rng));
}

TEST(GradCheck, Linear) {
  Rng rng(3);
  Linear fc(7, 4, rng);
  check_input_gradient(fc, random_tensor({3, 7}, rng));
  check_param_gradients(fc, random_tensor({3, 7}, rng));
}

TEST(GradCheck, BatchNorm) {
  Rng rng(4);
  BatchNorm2d bn(3);
  check_input_gradient(bn, random_tensor({4, 3, 3, 3}, rng, 2.0f), 0.1);
  check_param_gradients(bn, random_tensor({4, 3, 3, 3}, rng, 2.0f), 0.1);
}

TEST(GradCheck, MaxPool) {
  Rng rng(5);
  MaxPool2d pool(2, 2);
  check_input_gradient(pool, random_tensor({2, 2, 4, 4}, rng));
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(6);
  GlobalAvgPool pool;
  check_input_gradient(pool, random_tensor({2, 3, 4, 4}, rng));
}

TEST(GradCheck, SmallCnnEndToEnd) {
  // Full-network input gradient against finite differences.
  Rng rng(7);
  SmallCnnConfig cfg;
  cfg.image = 8;
  auto net = make_small_cnn(cfg, rng);
  check_input_gradient(*net, random_tensor({2, 3, 8, 8}, rng), 0.1);
}

TEST(Sgd, PlainStepMatchesFormula) {
  Rng rng(8);
  Param p(Tensor::full({3}, 1.0f));
  p.grad.fill(0.5f);
  Sgd opt(SgdConfig{/*momentum=*/0.0f, /*weight_decay=*/0.0f});
  opt.step({&p}, 0.1f);
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(p.value[i], 0.95f, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  Param p(Tensor::full({1}, 0.0f));
  Sgd opt(SgdConfig{0.9f, 0.0f});
  p.grad.fill(1.0f);
  opt.step({&p}, 1.0f);  // v=1, w=-1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6);
  opt.step({&p}, 1.0f);  // v=1.9, w=-2.9
  EXPECT_NEAR(p.value[0], -2.9f, 1e-6);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Param p(Tensor::full({1}, 10.0f));
  p.grad.fill(0.0f);
  Sgd opt(SgdConfig{0.0f, 0.1f});
  opt.step({&p}, 1.0f);
  EXPECT_NEAR(p.value[0], 9.0f, 1e-5);
}

TEST(LrSchedule, WarmupRampsToScaledRate) {
  // 256 GPUs × batch 32 → 8k batch → target 0.1·8192/256 = 3.2
  WarmupStepSchedule::Config cfg;
  cfg.per_gpu_batch = 32;
  cfg.workers = 256;
  WarmupStepSchedule sched(cfg);
  EXPECT_NEAR(sched.target_lr(), 3.2, 1e-9);
  EXPECT_NEAR(sched.lr(0.0), 0.1, 1e-9);
  EXPECT_NEAR(sched.lr(2.5), 0.1 + 0.5 * (3.2 - 0.1), 1e-9);
  EXPECT_NEAR(sched.lr(5.0), 3.2, 1e-9);
}

TEST(LrSchedule, StepDecayEvery30Epochs) {
  WarmupStepSchedule::Config cfg;
  cfg.per_gpu_batch = 64;
  cfg.workers = 32;  // target = 0.1·2048/256 = 0.8
  WarmupStepSchedule sched(cfg);
  EXPECT_NEAR(sched.lr(10), 0.8, 1e-9);
  EXPECT_NEAR(sched.lr(35), 0.08, 1e-9);
  EXPECT_NEAR(sched.lr(65), 0.008, 1e-9);
  EXPECT_NEAR(sched.lr(89.9), 0.008, 1e-7);  // third drop lands at epoch 90
}

TEST(LrSchedule, NoWarmupWhenTargetBelowBase) {
  WarmupStepSchedule::Config cfg;
  cfg.per_gpu_batch = 8;
  cfg.workers = 4;  // target = 0.0125 < base
  WarmupStepSchedule sched(cfg);
  EXPECT_NEAR(sched.lr(0.0), sched.target_lr(), 1e-9);
}

TEST(SmallCnn, DeterministicConstruction) {
  SmallCnnConfig cfg;
  Rng r1(42), r2(42);
  auto a = make_small_cnn(cfg, r1);
  auto b = make_small_cnn(cfg, r2);
  const auto n = static_cast<std::size_t>(a->param_count());
  std::vector<float> pa(n), pb(n);
  a->flatten_params(pa);
  b->flatten_params(pb);
  EXPECT_EQ(pa, pb);
}

TEST(SmallCnn, GradFlattenRoundTrip) {
  SmallCnnConfig cfg;
  Rng rng(1);
  auto net = make_small_cnn(cfg, rng);
  const auto n = static_cast<std::size_t>(net->param_count());
  std::vector<float> grads(n);
  for (std::size_t i = 0; i < n; ++i) grads[i] = static_cast<float>(i % 97);
  net->load_grads(grads);
  std::vector<float> out(n);
  net->flatten_grads(out);
  EXPECT_EQ(grads, out);
  net->zero_grads();
  net->flatten_grads(out);
  for (float v : out) ASSERT_EQ(v, 0.0f);
}

TEST(SmallCnn, ParamCountMatchesSpec) {
  SmallCnnConfig cfg;
  Rng rng(1);
  auto net = make_small_cnn(cfg, rng);
  EXPECT_EQ(net->param_count(), small_cnn_spec().param_count());
}

TEST(SmallCnn, LearnsASeparableProblem) {
  // Two classes, signalled by channel intensity — a few SGD steps must
  // reach high train accuracy with real gradients.
  SmallCnnConfig cfg;
  cfg.classes = 2;
  cfg.image = 8;
  Rng rng(123);
  auto net = make_small_cnn(cfg, rng);
  Sgd opt(SgdConfig{0.9f, 0.0f});

  const std::int64_t n = 32;
  Tensor x({n, 3, 8, 8});
  std::vector<std::int32_t> labels(static_cast<std::size_t>(n));
  Rng data_rng(5);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t y = static_cast<std::int32_t>(i % 2);
    labels[static_cast<std::size_t>(i)] = y;
    for (std::int64_t j = 0; j < 3 * 64; ++j) {
      const float base = y == 0 ? -0.5f : 0.5f;
      x.data()[i * 3 * 64 + j] = base + data_rng.next_float() * 0.4f;
    }
  }
  double acc = 0.0;
  for (int step = 0; step < 60; ++step) {
    net->zero_grads();
    Tensor logits = net->forward(x, true);
    Tensor grad;
    tensor::softmax_cross_entropy(logits, labels, grad);
    net->backward(grad);
    opt.step(net->params(), 0.05f);
    acc = tensor::top1_accuracy(logits, labels);
  }
  EXPECT_GT(acc, 0.9);
}

// ------------------------------------------------------------- specs

TEST(ModelSpec, ResNet50ExactParameterCount) {
  // The canonical torchvision/fb.resnet.torch ResNet-50 value.
  EXPECT_EQ(resnet50_spec(1000).param_count(), 25'557'032);
}

TEST(ModelSpec, ResNet50FlopsInKnownRange) {
  // ~4.1 GMACs → ~8.2 GFLOPs forward at 224².
  const double f = resnet50_spec().fwd_flops();
  EXPECT_GT(f, 7.0e9);
  EXPECT_LT(f, 9.5e9);
}

TEST(ModelSpec, ResNet50PayloadNearPaperScale) {
  // 25.56 M fp32 params ≈ 97.5 MiB reduction payload.
  const double mb = static_cast<double>(resnet50_spec().gradient_bytes()) /
                    static_cast<double>(MiB);
  EXPECT_GT(mb, 95.0);
  EXPECT_LT(mb, 100.0);
}

TEST(ModelSpec, GoogleNetBnUsesPaperReportedPayload) {
  const auto spec = googlenet_bn_spec();
  EXPECT_EQ(spec.gradient_bytes(), 93 * MiB);
  // The spec-derived count must still be a plausible Inception-BN-with-
  // aux-heads size (≈ 10–30 M params).
  EXPECT_GT(spec.param_count(), 10'000'000);
  EXPECT_LT(spec.param_count(), 30'000'000);
  // GoogleNetBN is much lighter in FLOPs than ResNet-50 (the paper's
  // per-epoch times: 155 s vs 224 s on 8 nodes).
  EXPECT_LT(spec.fwd_flops(), 0.75 * resnet50_spec().fwd_flops());
}

TEST(ModelSpec, LookupByName) {
  EXPECT_EQ(model_spec_by_name("resnet50").name(), "resnet50");
  EXPECT_EQ(model_spec_by_name("googlenetbn").name(), "googlenetbn");
  EXPECT_EQ(model_spec_by_name("smallcnn").name(), "smallcnn");
  EXPECT_THROW(model_spec_by_name("vgg"), CheckError);
}

TEST(ModelSpec, ActivationsPositive) {
  for (const char* m : {"resnet50", "googlenetbn", "smallcnn"}) {
    const auto spec = model_spec_by_name(m);
    EXPECT_GT(spec.activation_elems(), 0) << m;
    EXPECT_GT(spec.train_flops(), spec.fwd_flops()) << m;
  }
}

}  // namespace
}  // namespace dct::nn
