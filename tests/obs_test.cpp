// Tests for the obs module: tracer span semantics, per-rank/thread
// attribution, Chrome-trace export + re-parse round trip, the counter
// registry, and the phase-breakdown report over a real trainer run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "simmpi/runtime.hpp"
#include "trainer/distributed_trainer.hpp"
#include "util/error.hpp"

namespace dct::obs {
namespace {

/// Every test owns the global tracer: clean slate in, disabled out.
class ObsTest : public testing::Test {
 protected:
  void SetUp() override {
    Tracer::set_enabled(false);
    Tracer::reset();
    Tracer::set_thread_rank(kUnattributedRank);
  }
  void TearDown() override {
    Tracer::set_enabled(false);
    Tracer::reset();
    Tracer::set_thread_rank(kUnattributedRank);
  }
};

const CollectedEvent* find_event(const std::vector<CollectedEvent>& events,
                                 const std::string& name) {
  for (const auto& e : events) {
    if (name == e.event.name) return &e;
  }
  return nullptr;
}

TEST_F(ObsTest, DisabledRecordsNothing) {
  ASSERT_FALSE(Tracer::enabled());
  {
    DCT_TRACE_SPAN("should_not_appear", "test");
    DCT_TRACE_INSTANT("nor_this", "test");
  }
  EXPECT_EQ(Tracer::event_count(), 0u);
}

TEST_F(ObsTest, SpanDisabledAtOpenStaysInactive) {
  // A span opened while tracing is off must not record even if tracing
  // is switched on before it closes.
  {
    DCT_TRACE_SPAN("opened_disabled", "test");
    Tracer::set_enabled(true);
  }
  EXPECT_EQ(Tracer::event_count(), 0u);
}

TEST_F(ObsTest, NestedSpansAreContained) {
  Tracer::set_enabled(true);
  {
    DCT_TRACE_SPAN("outer", "test");
    {
      DCT_TRACE_SPAN("inner", "test", 42);
    }
  }
  const auto events = Tracer::collect();
  ASSERT_EQ(events.size(), 2u);
  const auto* outer = find_event(events, "outer");
  const auto* inner = find_event(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Inner closes first, so it is recorded first; its interval nests
  // inside the outer one.
  EXPECT_GE(inner->event.ts_ns, outer->event.ts_ns);
  EXPECT_LE(inner->event.ts_ns + inner->event.dur_ns,
            outer->event.ts_ns + outer->event.dur_ns);
  EXPECT_EQ(inner->event.arg, 42);
  EXPECT_EQ(outer->event.arg, kNoArg);
  EXPECT_STREQ(inner->event.cat, "test");
}

TEST_F(ObsTest, LongLabelsTruncateSafely) {
  Tracer::set_enabled(true);
  const std::string long_name(200, 'x');
  {
    DCT_TRACE_SPAN(long_name, "category_name_longer_than_field");
  }
  const auto events = Tracer::collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].event.name), std::string(47, 'x'));
  EXPECT_EQ(std::string(events[0].event.cat).size(), 15u);
}

TEST_F(ObsTest, ThreadsGetDistinctBuffers) {
  Tracer::set_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      Tracer::set_thread_rank(t);
      DCT_TRACE_SPAN("worker", "test", t);
    });
  }
  for (auto& w : workers) w.join();
  const auto events = Tracer::collect();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads));
  std::vector<int> tids, ranks;
  for (const auto& e : events) {
    tids.push_back(e.tid);
    ranks.push_back(e.event.rank);
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end())
      << "each thread must collect under its own tid";
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(ObsTest, ScopedRankRestores) {
  Tracer::set_enabled(true);
  Tracer::set_thread_rank(7);
  {
    ScopedRank borrowed(2);
    EXPECT_EQ(Tracer::thread_rank(), 2);
    DCT_TRACE_INSTANT("tagged", "test");
  }
  EXPECT_EQ(Tracer::thread_rank(), 7);
  const auto events = Tracer::collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].event.rank, 2);
  EXPECT_EQ(events[0].event.kind, TraceEvent::Kind::kInstant);
  EXPECT_EQ(events[0].event.dur_ns, 0u);
}

TEST_F(ObsTest, ChromeTraceRoundTrip) {
  Tracer::set_enabled(true);
  Tracer::set_thread_rank(3);
  {
    DCT_TRACE_SPAN("alpha", "test", 1234);
  }
  DCT_TRACE_INSTANT("beta", "test");
  std::ostringstream os;
  Tracer::write_chrome_trace(os);
  const std::string json = os.str();

  // Structural checks on the emitted JSON.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 3\""), std::string::npos);

  // Parse it back and verify the events survive with attribution.
  const auto events = parse_chrome_trace(json);
  ASSERT_EQ(events.size(), 2u);
  const auto& span = events[0].name == "alpha" ? events[0] : events[1];
  const auto& instant = events[0].name == "beta" ? events[0] : events[1];
  EXPECT_EQ(span.name, "alpha");
  EXPECT_EQ(span.cat, "test");
  EXPECT_EQ(span.rank, 3);
  EXPECT_GE(span.dur_us, 0.0);
  EXPECT_EQ(instant.name, "beta");
  EXPECT_EQ(instant.dur_us, 0.0);
}

TEST_F(ObsTest, WriteChromeTraceToFile) {
  Tracer::set_enabled(true);
  {
    DCT_TRACE_SPAN("file_span", "test");
  }
  const std::string path = testing::TempDir() + "dct_obs_trace.json";
  Tracer::write_chrome_trace(path);
  const auto events = load_chrome_trace(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "file_span");
  std::remove(path.c_str());
}

TEST_F(ObsTest, ParserRejectsMalformedJson) {
  EXPECT_THROW(parse_chrome_trace("not json"), CheckError);
  EXPECT_THROW(parse_chrome_trace("{\"traceEvents\": [1,"), CheckError);
  EXPECT_THROW(load_chrome_trace("/nonexistent/trace.json"), CheckError);
  // Missing traceEvents key and bare arrays are both tolerated shapes.
  EXPECT_TRUE(parse_chrome_trace("[]").empty());
  EXPECT_TRUE(parse_chrome_trace("{\"traceEvents\": []}").empty());
}

TEST_F(ObsTest, CountersGaugesHistograms) {
  Metrics::reset();
  auto& c = Metrics::counter("test.counter");
  auto& same = Metrics::counter("test.counter");
  EXPECT_EQ(&c, &same) << "same name must return the same instrument";
  c.add(5);
  c.add();
  EXPECT_EQ(c.value(), 6u);

  auto& g = Metrics::gauge("test.gauge");
  g.set(10);
  g.set(3);
  g.add(-2);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 10);

  auto& h = Metrics::histogram("test.hist");
  for (int i = 1; i <= 100; ++i) h.record(i * 0.001);
  const auto hs = h.snapshot();
  EXPECT_EQ(hs.count, 100u);
  EXPECT_NEAR(hs.mean, 0.0505, 1e-9);
  EXPECT_NEAR(hs.p50, 0.0505, 1e-3);
  EXPECT_NEAR(hs.p99, 0.099, 1e-3);
  EXPECT_DOUBLE_EQ(hs.min, 0.001);
  EXPECT_DOUBLE_EQ(hs.max, 0.100);

  const auto snap = Metrics::snapshot();
  const auto has = [](const auto& rows, const std::string& name) {
    for (const auto& r : rows) {
      if (r.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(snap.counters, "test.counter"));
  EXPECT_TRUE(has(snap.gauges, "test.gauge"));
  EXPECT_TRUE(has(snap.histograms, "test.hist"));
  EXPECT_FALSE(snap.to_string().empty());

  Metrics::reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.max_value(), 0);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(ObsTest, HistogramWindowKeepsRecentSamples) {
  auto& h = Metrics::histogram("test.windowed");
  h.reset();
  // Overfill the window: early small samples must age out of the
  // percentile estimates while the full-stream count keeps growing.
  for (std::size_t i = 0; i < LatencyHistogram::kWindow; ++i) h.record(0.001);
  for (std::size_t i = 0; i < LatencyHistogram::kWindow; ++i) h.record(1.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 2 * LatencyHistogram::kWindow);
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  h.reset();
}

TEST_F(ObsTest, TrainerTraceCoversStepTime) {
  Tracer::set_enabled(true);
  trainer::TrainerConfig cfg;
  cfg.model.classes = 4;
  cfg.model.image = 8;
  cfg.gpus_per_node = 1;
  cfg.batch_per_gpu = 4;
  cfg.dataset.classes = 4;
  cfg.dataset.images = 64;
  cfg.dataset.image = data::ImageDef{3, 8, 8};
  cfg.shuffle_every = 3;
  constexpr int kIters = 6;
  simmpi::Runtime::execute(2, [&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer t(comm, cfg);
    for (int i = 0; i < kIters; ++i) {
      const auto m = t.step();
      EXPECT_GT(m.step_seconds, 0.0);
      EXPECT_GE(m.step_seconds,
                m.data_seconds + m.allreduce_seconds - 1e-9);
    }
  });
  Tracer::set_enabled(false);

  const auto events = tracer_events();
  const auto breakdown = phase_breakdown(events);
  ASSERT_EQ(breakdown.ranks.size(), 2u);
  for (const auto& r : breakdown.ranks) {
    EXPECT_EQ(r.steps, static_cast<std::size_t>(kIters));
    EXPECT_GT(r.step_seconds, 0.0);
    // Acceptance criterion: phases account for >= 95 % of step time.
    EXPECT_GE(r.coverage(), 0.95) << "rank " << r.rank;
    EXPECT_LE(r.coverage(), 1.02) << "rank " << r.rank;
  }
  // The instrumented subsystems all show up.
  const auto names = [&] {
    std::vector<std::string> out;
    for (const auto& e : events) out.push_back(e.cat + "/" + e.name);
    return out;
  }();
  const auto contains = [&](const std::string& label) {
    return std::find(names.begin(), names.end(), label) != names.end();
  };
  EXPECT_TRUE(contains("phase/forward_backward"));
  EXPECT_TRUE(contains("phase/allreduce"));
  EXPECT_TRUE(contains("phase/shuffle"));
  EXPECT_TRUE(contains("allreduce/multicolor"));
  EXPECT_TRUE(contains("data/dimd.shuffle"));
  EXPECT_TRUE(contains("simmpi/comm_split"));

  // Rendered tables mention every rank and the phases.
  const std::string table = phase_table(breakdown).to_string();
  EXPECT_NE(table.find("forward_backward"), std::string::npos);
  EXPECT_NE(table.find("coverage"), std::string::npos);
  const std::string totals = span_totals_table(events, 8).to_string();
  EXPECT_NE(totals.find("step/step"), std::string::npos);
}

}  // namespace
}  // namespace dct::obs
