// dctrain — command-line driver over the library's public API.
//
//   dctrain train     [--ranks N] [--gpus M] [--batch B] [--epochs E]
//                     [--iters I] [--allreduce NAME] [--shuffle-every S]
//                     [--classes C] [--images D] [--baseline-dpt]
//                     [--bucket-mb MB] [--compress none|fp16|int8-ef]
//                     [--no-overlap] [--metrics-csv PATH]
//                     [--autotune] [--autotune-trials N]
//                     [--trace PATH]
//                     [--checkpoint-dir D] [--checkpoint-every N] [--resume]
//                     [--inject SPEC[;SPEC…]] [--deadline-ms MS]
//                     [--replication R]
//                     [--telemetry] [--telemetry-every N]
//                     [--telemetry-jsonl PATH] [--telemetry-prom PATH]
//                     [--integrity] [--health] [--quarantine]
//                     SPEC: rank=R,kind=crash,step=N | msg=N; kind=drop/
//                     delay/duplicate/straggle/corrupt/truncate with
//                     prob=P, ms=D
//   dctrain chaos     [--ranks N] [--iters I] [--seed S] [--rollbacks R]
//                     [--checkpoint-dir D] [--checkpoint-every N]
//                     [--deadline-ms MS] [--drop-prob P] [--no-overlap]
//                     [--elastic] [--replication R] [--min-ranks N]
//                     [--shrinks N] [--spares N] [--telemetry …as train]
//                     [--integrity] [--corrupt-prob P] [--quarantine]
//   dctrain top       [--ranks N] [--iters I] [--refresh N] [--inject SPEC]
//                     live per-rank phase/straggler view (telemetry plane)
//   dctrain cluster   [--ranks N] [--jobs N] [--seed S] [--trace PATH]
//                     [--event-log PATH] [--checkpoint-dir D]
//                     [--aging S] [--starvation S] [--iters-scale X]
//                     multi-tenant gang scheduler over a scripted or
//                     synthetic job arrival trace (DESIGN.md §15)
//   dctrain trace-report --trace PATH [--top N] [--critical-path]
//   dctrain plan      [--model resnet50|googlenetbn] [--nodes N]
//                     [--batch B] [--baseline]
//                     [--topology fattree|fattree_oversub|torus|dragonfly]
//                     [--oversub X] [--torus-cols C]  (crossover tables)
//   dctrain allreduce [--algo NAME] [--nodes N] [--payload-mb P]
//                     [--topology KIND] [--oversub X]
//   dctrain shuffle   [--nodes N] [--dataset-gb G] [--groups K]
//   dctrain dataset   [--blob PATH] [--index PATH] [--images D]
//                     [--classes C] [--size S]
//   dctrain help
//
// Every subcommand drives the same code paths the tests and benches use.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "core/dctrain.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using namespace dct;

/// Shared --telemetry* flag handling (train / chaos / top).
void apply_telemetry_flags(const ArgParser& args,
                           trainer::TrainerConfig& cfg) {
  cfg.telemetry.enabled = args.has("telemetry");
  cfg.telemetry.push_every =
      static_cast<int>(args.get_int("telemetry-every", 1));
  cfg.telemetry.jsonl_path = args.get("telemetry-jsonl", "");
  cfg.telemetry.prom_path = args.get("telemetry-prom", "");
  if (!cfg.telemetry.jsonl_path.empty() || !cfg.telemetry.prom_path.empty()) {
    cfg.telemetry.enabled = true;
  }
}

/// Shared --health/--quarantine flag handling (train / chaos).
/// --quarantine implies --health; the scoreboard needs the guard's
/// screening to attribute anomalies.
void apply_health_flags(const ArgParser& args, trainer::TrainerConfig& cfg) {
  cfg.health.enabled = args.has("health") || args.has("quarantine");
  cfg.health.quarantine = args.has("quarantine");
}

/// Final integrity-counter line for runs with --integrity.
void print_integrity_summary() {
  const auto snap = obs::Metrics::snapshot();
  const auto value = [&](const char* name) -> unsigned long long {
    for (const auto& row : snap.counters) {
      if (row.name == name) return row.value;
    }
    return 0;
  };
  std::printf("integrity: %llu CRC failure(s), %llu retransmit(s), "
              "%llu lost past retry budget\n",
              value("integrity.crc_failures"), value("integrity.retransmits"),
              value("integrity.lost"));
}

int cmd_train(const ArgParser& args) {
  const int ranks = static_cast<int>(args.get_int("ranks", 2));
  trainer::TrainerConfig cfg;
  cfg.gpus_per_node = static_cast<int>(args.get_int("gpus", 2));
  cfg.batch_per_gpu = args.get_int("batch", 8);
  cfg.allreduce = args.get("allreduce", "multicolor");
  // Fail fast on a typo'd name — the registry error lists every known
  // algorithm — instead of throwing inside the rank threads.
  (void)allreduce::make_algorithm(cfg.allreduce);
  cfg.autotune = args.has("autotune");
  cfg.tuner.trials_per_candidate =
      static_cast<int>(args.get_int("autotune-trials", 2));
  cfg.shuffle_every = static_cast<int>(args.get_int("shuffle-every", 8));
  cfg.optimized_dpt = !args.has("baseline-dpt");
  cfg.model.classes = static_cast<int>(args.get_int("classes", 10));
  cfg.model.image = 16;
  cfg.dataset.classes = cfg.model.classes;
  cfg.dataset.images = args.get_int("images", 640);
  cfg.dataset.image = data::ImageDef{3, 16, 16};
  cfg.dataset.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  cfg.dimd.replication = static_cast<int>(args.get_int("replication", 1));
  cfg.base_lr = args.get_double("lr", 0.05);
  // Gradient-comm pipeline: bucketed overlap on by default; --bucket-mb 0
  // restores the monolithic blocking allreduce.
  const double bucket_mb = args.get_double("bucket-mb", 4.0);
  cfg.comm.bucket_bytes =
      static_cast<std::size_t>(bucket_mb * 1024.0 * 1024.0);
  cfg.comm.codec = args.get("compress", "none");
  cfg.comm.overlap = cfg.comm.bucket_bytes > 0 && !args.has("no-overlap");
  apply_telemetry_flags(args, cfg);
  apply_health_flags(args, cfg);
  const bool integrity = args.has("integrity");
  const std::string metrics_csv = args.get("metrics-csv", "");
  const int epochs = static_cast<int>(args.get_int("epochs", 5));
  const int iters = static_cast<int>(args.get_int("iters", 10));
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) obs::Tracer::set_enabled(true);

  cfg.checkpoint_dir = args.get("checkpoint-dir", "");
  cfg.checkpoint_every = static_cast<int>(args.get_int("checkpoint-every", 20));
  const auto deadline =
      std::chrono::milliseconds(args.get_int("deadline-ms", 5000));
  simmpi::FaultPlan plan(cfg.dataset.seed);
  const std::string inject = args.get("inject", "");
  if (!inject.empty()) plan.add_specs(inject);

  std::printf("training SmallCNN: %d learners x %d GPUs, batch %lld/GPU, "
              "%s allreduce, %s DPT\n",
              ranks, cfg.gpus_per_node,
              static_cast<long long>(cfg.batch_per_gpu),
              cfg.allreduce.c_str(),
              cfg.optimized_dpt ? "optimized" : "baseline");
  if (cfg.comm.enabled()) {
    std::printf("gradient comm: %.1f MB buckets, %s codec, overlap %s\n\n",
                bucket_mb, cfg.comm.codec.empty() ? "none" : cfg.comm.codec.c_str(),
                cfg.comm.overlap ? "on" : "off");
  } else {
    std::printf("gradient comm: monolithic blocking allreduce\n\n");
  }
  if (cfg.autotune) {
    const std::size_t n = cfg.tuner.candidates.empty()
                              ? allreduce::Tuner::default_candidates().size()
                              : cfg.tuner.candidates.size();
    std::printf("autotune: warming up %zu candidate config(s), %d trial(s) "
                "each, then committing the cross-rank argmin\n\n",
                n, cfg.tuner.trials_per_candidate);
  }
  if (!cfg.checkpoint_dir.empty()) {
    // Resilient path: checkpoint/rollback driver; survives --inject
    // crashes and resumes interrupted runs with --resume.
    trainer::ResilientConfig rcfg;
    rcfg.trainer = cfg;
    rcfg.ranks = ranks;
    rcfg.total_iterations =
        static_cast<std::uint64_t>(epochs) * static_cast<std::uint64_t>(iters);
    rcfg.recv_deadline = deadline;
    rcfg.resume_first = args.has("resume");
    rcfg.integrity = integrity;
    const auto res = trainer::run_resilient(
        rcfg, plan.empty() ? nullptr : &plan);
    if (integrity) print_integrity_summary();
    for (const auto& f : res.failures) {
      std::printf("  fault: %s\n", f.c_str());
    }
    std::printf("%s after %llu rollback(s): %llu iterations, loss %.4f, "
                "%llu fault(s) injected, %llu step(s) redone\n",
                res.completed ? "completed" : "GAVE UP",
                static_cast<unsigned long long>(res.rollbacks),
                static_cast<unsigned long long>(rcfg.total_iterations),
                res.final_loss,
                static_cast<unsigned long long>(res.faults_injected),
                static_cast<unsigned long long>(res.lost_steps));
    if (!res.completed) return 1;
  } else {
    simmpi::Runtime rt(ranks);
    if (integrity) rt.transport().enable_integrity(true);
    if (!plan.empty()) {
      rt.transport().install_fault_plan(&plan);
      rt.transport().set_recv_deadline(deadline);
    }
    rt.run([&](simmpi::Communicator& comm) {
      trainer::DistributedTrainer trainer(comm, cfg);
      if (args.has("resume")) trainer.resume();
      // Per-step CSV (rank 0): rank, step, loss, timings, comm bytes.
      std::unique_ptr<trainer::MetricsLog> mlog;
      if (comm.rank() == 0 && !metrics_csv.empty()) {
        mlog = std::make_unique<trainer::MetricsLog>(
            metrics_csv, trainer::MetricsLog::step_columns());
      }
      for (int e = 1; e <= epochs; ++e) {
        if (mlog != nullptr) {
          double mean_loss = 0.0;
          for (int i = 0; i < iters; ++i) {
            const auto m = trainer.step();
            mean_loss += m.loss;
            mlog->append_step(comm.rank(), trainer.iteration() - 1,
                              comm.size(), m);
          }
          std::printf("epoch %2d  loss %.4f\n", e, mean_loss / iters);
          continue;
        }
        const auto m = trainer.train_epoch(iters);
        if (comm.rank() == 0) {
          std::printf("epoch %2d  loss %.4f  train-acc %5.1f %%\n", e,
                      m.mean_loss, 100.0 * m.train_accuracy);
        }
      }
      if (mlog != nullptr) {
        std::printf("\nwrote %zu step rows to %s\n", mlog->rows(),
                    metrics_csv.c_str());
      }
      if (const auto* plane = trainer.telemetry_plane();
          plane != nullptr && plane->aggregator() != nullptr) {
        plane->aggregator()
            ->top_table(plane->detector())
            .print("cluster telemetry (final)");
      }
      if (comm.rank() == 0 && trainer.tuner() != nullptr) {
        trainer.tuner()->decision_table().print("autotune decisions");
        const auto decisions = trainer.tuner()->decisions();
        const bool any_committed =
            std::any_of(decisions.begin(), decisions.end(),
                        [](const allreduce::TuneDecision& d) {
                          return d.committed;
                        });
        if (any_committed) {
          std::printf("committed allreduce: %s\n",
                      trainer.allreduce_name().c_str());
        } else {
          std::printf("autotune warmup incomplete (%d trial(s) recorded; "
                      "needs %zu candidate(s) x %d trial(s) per payload "
                      "class) -- kept allreduce: %s\n",
                      decisions.empty() ? 0 : decisions.front().trials,
                      trainer.tuner()->candidates().size(),
                      cfg.tuner.trials_per_candidate,
                      trainer.allreduce_name().c_str());
        }
      }
      if (comm.rank() == 0) {
        std::printf("\nheld-out top-1: %.1f %%\n",
                    100.0 * trainer.evaluate(200));
      }
    });
    if (integrity) print_integrity_summary();
  }
  if (!trace_path.empty()) {
    const auto events = obs::tracer_events();
    obs::Tracer::write_chrome_trace(trace_path);
    std::printf("\nwrote %zu trace events to %s "
                "(open in https://ui.perfetto.dev/ or chrome://tracing)\n",
                events.size(), trace_path.c_str());
    obs::phase_table(obs::phase_breakdown(events))
        .print("per-rank step phase breakdown");
    std::printf("%s", obs::Metrics::snapshot().to_string().c_str());
  }
  return 0;
}

int cmd_chaos(const ArgParser& args) {
  // Randomized fault schedule against the resilient driver: crashes,
  // drops, delays, duplicates and a straggler, all derived from --seed.
  // Exit 0 only if training still reaches the target iteration count
  // and the loss actually came down.
  const int ranks = static_cast<int>(args.get_int("ranks", 2));
  const auto total =
      static_cast<std::uint64_t>(args.get_int("iters", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  const double drop_prob = args.get_double("drop-prob", 0.001);

  trainer::ResilientConfig rcfg;
  rcfg.trainer.gpus_per_node = static_cast<int>(args.get_int("gpus", 2));
  rcfg.trainer.batch_per_gpu = args.get_int("batch", 8);
  rcfg.trainer.seed = seed;
  rcfg.trainer.checkpoint_dir = args.get("checkpoint-dir", "chaos-ckpt");
  rcfg.trainer.checkpoint_every =
      static_cast<int>(args.get_int("checkpoint-every", 10));
  rcfg.ranks = ranks;
  rcfg.total_iterations = total;
  rcfg.max_rollbacks = static_cast<int>(args.get_int("rollbacks", 12));
  rcfg.recv_deadline =
      std::chrono::milliseconds(args.get_int("deadline-ms", 3000));
  // Run the bucketed-overlap comm path under fault injection so the
  // progress thread sees crashes, drops, and stragglers too.
  rcfg.trainer.comm.bucket_bytes = 256 * 1024;
  rcfg.trainer.comm.overlap = !args.has("no-overlap");
  apply_telemetry_flags(args, rcfg.trainer);
  apply_health_flags(args, rcfg.trainer);
  rcfg.integrity = args.has("integrity");

  Rng rng(seed * 0xC0FFEE + 1);
  simmpi::FaultPlan plan(seed);
  const auto pick_rank = [&] {
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(ranks)));
  };
  plan.add({.kind = simmpi::FaultKind::kCrash, .rank = pick_rank(),
            .at_step = total / 4 + rng.next_below(std::max<std::uint64_t>(
                                      1, total / 2))});
  plan.add({.kind = simmpi::FaultKind::kCrash, .rank = pick_rank(),
            .at_message = 200 + rng.next_below(2000)});
  plan.add({.kind = simmpi::FaultKind::kDrop, .rank = pick_rank(),
            .probability = drop_prob});
  plan.add({.kind = simmpi::FaultKind::kDelay, .probability = 0.01,
            .delay_ms = 2.0});
  plan.add({.kind = simmpi::FaultKind::kDuplicate, .rank = pick_rank(),
            .probability = 0.01});
  plan.add({.kind = simmpi::FaultKind::kStraggle, .rank = pick_rank(),
            .probability = 0.05, .delay_ms = 1.0});
  if (rcfg.integrity) {
    // Silent-data-corruption arm: only sane with the CRC envelope on —
    // without it a flipped gradient bit silently poisons every replica
    // and the convergence check below measures garbage.
    plan.add({.kind = simmpi::FaultKind::kCorrupt, .rank = pick_rank(),
              .probability = args.get_double("corrupt-prob", 0.02)});
  }

  std::printf("chaos: %d learners, %llu iterations, seed %llu, "
              "%zu fault rule(s)%s\n",
              ranks, static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(seed), plan.rules().size(),
              args.has("elastic") ? ", elastic recovery" : "");

  if (args.has("elastic")) {
    // Survivor-shrink recovery (DESIGN.md §11): shrink past crashes on
    // the ranks that are left, roll back only when shrink is impossible.
    trainer::ElasticConfig ecfg;
    ecfg.trainer = rcfg.trainer;
    ecfg.trainer.dimd.replication =
        static_cast<int>(args.get_int("replication", 2));
    ecfg.ranks = rcfg.ranks;
    ecfg.total_iterations = rcfg.total_iterations;
    ecfg.max_rollbacks = rcfg.max_rollbacks;
    ecfg.max_shrinks = static_cast<int>(args.get_int("shrinks", 4));
    ecfg.min_ranks = static_cast<int>(args.get_int("min-ranks", 2));
    ecfg.recv_deadline = rcfg.recv_deadline;
    ecfg.join_deadline = 4 * rcfg.recv_deadline;
    // Self-healing: hot spares idle outside the world; a shrink is
    // followed by a grow that promotes them back in.
    ecfg.spares = static_cast<int>(args.get_int("spares", 0));
    ecfg.integrity = rcfg.integrity;
    const auto res = trainer::run_elastic(ecfg, &plan);
    for (const auto& inc : res.incidents) {
      const std::string where =
          inc.kind == "rollback"
              ? std::string()
              : " to " + std::to_string(inc.world_size) + " ranks";
      std::printf("  %s%s: %s\n", inc.kind.c_str(), where.c_str(),
                  inc.detail.c_str());
    }
    std::printf("%s: %llu shrink(s), %llu grow(s), %llu quarantine(s), "
                "%llu rollback(s), %llu fault(s) injected, %llu step(s) "
                "redone, %d rank(s) at the end, final loss %.4f\n",
                res.completed ? "survived" : "GAVE UP",
                static_cast<unsigned long long>(res.shrinks),
                static_cast<unsigned long long>(res.grows),
                static_cast<unsigned long long>(res.quarantines),
                static_cast<unsigned long long>(res.rollbacks),
                static_cast<unsigned long long>(res.faults_injected),
                static_cast<unsigned long long>(res.lost_steps),
                res.final_ranks, res.final_loss);
    if (ecfg.integrity) print_integrity_summary();
    std::printf("%s", obs::Metrics::snapshot().to_string().c_str());
    const double chance =
        std::log(static_cast<double>(ecfg.trainer.model.classes));
    const bool converged =
        std::isfinite(res.final_loss) && res.final_loss < chance;
    if (!converged) {
      std::printf("loss %.4f did not beat random-guess %.4f\n",
                  res.final_loss, chance);
    }
    return res.completed && converged ? 0 : 1;
  }

  const auto res = trainer::run_resilient(rcfg, &plan);
  if (rcfg.integrity) print_integrity_summary();
  for (const auto& f : res.failures) std::printf("  fault: %s\n", f.c_str());
  std::printf("%s: %llu rollback(s), %llu fault(s) injected, %llu step(s) "
              "redone, final loss %.4f\n",
              res.completed ? "survived" : "GAVE UP",
              static_cast<unsigned long long>(res.rollbacks),
              static_cast<unsigned long long>(res.faults_injected),
              static_cast<unsigned long long>(res.lost_steps),
              res.final_loss);
  std::printf("%s", obs::Metrics::snapshot().to_string().c_str());
  // Convergence check: random-guess cross-entropy is ln(classes); the
  // run must land clearly below it despite the injected faults.
  const double chance =
      std::log(static_cast<double>(rcfg.trainer.model.classes));
  const bool converged =
      std::isfinite(res.final_loss) && res.final_loss < chance;
  if (!converged) {
    std::printf("loss %.4f did not beat random-guess %.4f\n", res.final_loss,
                chance);
  }
  return res.completed && converged ? 0 : 1;
}

int cmd_trace_report(const ArgParser& args) {
  const std::string path = args.get("trace", "");
  if (path.empty()) {
    std::fprintf(stderr, "trace-report needs --trace PATH\n");
    return 2;
  }
  const auto top = static_cast<std::size_t>(args.get_int("top", 12));
  const auto events = obs::load_chrome_trace(path);
  std::printf("%s: %zu events\n", path.c_str(), events.size());
  if (args.has("critical-path")) {
    // Cross-rank causal analysis: walk message flow events backwards
    // from each step's last-finishing rank and attribute the step's
    // latency to the rank (and phase) it actually waited on.
    const auto cp = obs::critical_path(events);
    obs::critical_path_table(cp).print("critical-path attribution");
    if (cp.overall_culprit >= 0) {
      std::printf("dominant straggler: rank %d (on the critical path of "
                  "%llu/%zu steps)\n",
                  cp.overall_culprit,
                  static_cast<unsigned long long>(
                      cp.rank_culprit_steps.count(cp.overall_culprit)
                          ? cp.rank_culprit_steps.at(cp.overall_culprit)
                          : 0),
                  cp.steps.size());
    } else {
      std::printf("no cross-rank flow events in this trace (capture with "
                  "DCTRAIN_TRACE or --trace during a run)\n");
    }
    return 0;
  }
  obs::phase_table(obs::phase_breakdown(events))
      .print("per-rank step phase breakdown");
  obs::span_totals_table(events, top).print("busiest span labels");
  // Autotune decisions captured in the trace: one "autotune.commit"
  // instant per committed payload class per rank (every rank commits
  // the same class at the same step — a count below the rank count
  // flags a desynchronized tuner).
  std::map<std::int64_t, int> commits;
  for (const auto& ev : events) {
    if (ev.kind == obs::ReportEvent::Kind::kInstant &&
        ev.name == "autotune.commit") {
      ++commits[ev.arg];
    }
  }
  if (!commits.empty()) {
    Table tuned({"payload class", "ranks committed"});
    for (const auto& [bytes, n] : commits) {
      tuned.add_row({format_bytes(static_cast<double>(bytes)),
                     std::to_string(n)});
    }
    tuned.print("autotune commits");
  }
  return 0;
}

int cmd_top(const ArgParser& args) {
  // Live cluster view: run training with the telemetry plane on and
  // redraw the rank-0 collector's table as steps complete. Pair with
  // --inject 'rank=R,kind=straggle,…' to watch the detector fire.
  const int ranks = static_cast<int>(args.get_int("ranks", 4));
  const int iters = static_cast<int>(args.get_int("iters", 60));
  const int refresh = std::max(1, static_cast<int>(args.get_int("refresh", 1)));
  trainer::TrainerConfig cfg;
  cfg.gpus_per_node = static_cast<int>(args.get_int("gpus", 2));
  cfg.batch_per_gpu = args.get_int("batch", 8);
  cfg.dataset.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  cfg.comm.bucket_bytes = 256 * 1024;
  cfg.comm.overlap = true;
  apply_telemetry_flags(args, cfg);
  cfg.telemetry.enabled = true;

  simmpi::FaultPlan plan(cfg.dataset.seed);
  const std::string inject = args.get("inject", "");
  if (!inject.empty()) plan.add_specs(inject);
  const auto deadline =
      std::chrono::milliseconds(args.get_int("deadline-ms", 5000));

  simmpi::Runtime rt(ranks);
  if (!plan.empty()) {
    rt.transport().install_fault_plan(&plan);
    rt.transport().set_recv_deadline(deadline);
  }
  rt.run([&](simmpi::Communicator& comm) {
    trainer::DistributedTrainer trainer(comm, cfg);
    for (int i = 0; i < iters; ++i) {
      trainer.step();
      const auto* plane = trainer.telemetry_plane();
      if (plane == nullptr || plane->aggregator() == nullptr) continue;
      if ((i + 1) % refresh != 0 && i + 1 != iters) continue;
      // Home the cursor and clear to end of screen — a flicker-free
      // redraw on any ANSI terminal.
      std::printf("\033[H\033[J");
      std::printf("dctrain top — %d ranks, step %d/%d%s\n\n", comm.size(),
                  i + 1, iters, plane->disabled() ? " [telemetry DOWN]" : "");
      plane->aggregator()->top_table(plane->detector()).print();
      std::fflush(stdout);
    }
    const auto* plane = trainer.telemetry_plane();
    if (plane != nullptr && plane->detector() != nullptr) {
      for (const auto& ev : plane->detector()->events()) {
        std::printf("straggler: rank %d in %s at step %lld "
                    "(%.4fs vs median %.4fs, z=%.1f)\n",
                    ev.rank, ev.phase.c_str(),
                    static_cast<long long>(ev.step), ev.value, ev.median,
                    ev.z);
      }
    }
  });
  return 0;
}

sched::Priority parse_priority(const std::string& name) {
  if (name == "batch") return sched::Priority::kBatch;
  if (name == "production") return sched::Priority::kProduction;
  DCT_CHECK_MSG(name.empty() || name == "standard",
                "unknown priority \"" << name
                << "\" (want batch|standard|production)");
  return sched::Priority::kStandard;
}

/// Synthetic arrival trace for `dctrain cluster` when no --trace file
/// is given. The first three jobs are a scripted prologue that forces
/// the interesting transitions on any cluster of ≥ 8 ranks:
///
///   warm-elastic  standard, elastic, long-running — the cede donor
///   warm-rigid    batch, rigid, fills the rest of the cluster
///   burst-prod    production, needs one rank more than warm-rigid
///                 holds → exactly one cede from warm-elastic plus a
///                 preemption of warm-rigid, which later resumes from
///                 its checkpoint; once the burst drains and the queue
///                 empties, warm-elastic grows back into the freed rank
///
/// The rest are small jobs across all three classes arriving on a
/// steady ramp, so the queue sees backfill and priority ordering too.
std::vector<sched::JobSpec> synthetic_trace(int ranks, int jobs,
                                            std::uint64_t seed,
                                            double iters_scale) {
  const auto scaled = [&](double n) {
    return static_cast<std::int64_t>(std::max(1.0, n * iters_scale));
  };
  std::vector<sched::JobSpec> trace;
  int scripted = 0;
  if (ranks >= 8 && jobs >= 3) {
    const int elastic_w = std::max(4, ranks / 4);
    const int rigid_w = ranks - elastic_w;
    trace.push_back({.id = "warm-elastic",
                     .priority = sched::Priority::kStandard,
                     .min_ranks = elastic_w / 2,
                     .max_ranks = elastic_w,
                     .iterations = scaled(2500),
                     .submit_time = 0.0});
    trace.push_back({.id = "warm-rigid",
                     .priority = sched::Priority::kBatch,
                     .min_ranks = rigid_w,
                     .max_ranks = rigid_w,
                     .iterations = scaled(120),
                     .submit_time = 0.0});
    trace.push_back({.id = "burst-prod",
                     .priority = sched::Priority::kProduction,
                     .min_ranks = rigid_w + 1,
                     .max_ranks = rigid_w + 1,
                     .iterations = scaled(30),
                     .submit_time = 0.4});
    scripted = 3;
  }
  Rng rng(seed * 0x5EED + 17);
  for (int i = scripted; i < jobs; ++i) {
    sched::JobSpec s;
    char id[32];
    std::snprintf(id, sizeof id, "job-%03d", i);
    s.id = id;
    const auto cls = rng.next_below(10);
    s.priority = cls < 5   ? sched::Priority::kBatch
                 : cls < 8 ? sched::Priority::kStandard
                           : sched::Priority::kProduction;
    const int cap = std::max(1, std::min(4, ranks / 2));
    s.min_ranks = 1 + static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(cap)));
    s.max_ranks = rng.next_below(3) == 0
                      ? std::min(ranks, s.min_ranks + 2)
                      : s.min_ranks;
    s.iterations = scaled(5.0 + static_cast<double>(rng.next_below(36)));
    s.submit_time = 2.0 + 0.04 * (i - scripted);
    trace.push_back(std::move(s));
  }
  return trace;
}

int cmd_cluster(const ArgParser& args) {
  const int ranks = static_cast<int>(args.get_int("ranks", 32));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  const std::string trace_path = args.get("trace", "");
  const std::string event_log = args.get("event-log", "");

  std::vector<sched::JobSpec> trace;
  if (!trace_path.empty()) {
    // --trace jobs.json: a JSON array of
    //   {"id": "...", "priority": "batch|standard|production",
    //    "min_ranks": N, "max_ranks": N, "iterations": N, "submit_s": T}
    const auto doc = load_json(trace_path);
    DCT_CHECK_MSG(doc.type == JsonValue::Type::kArray,
                  trace_path << ": trace must be a JSON array of jobs");
    for (const auto& e : doc.array) {
      sched::JobSpec s;
      s.id = json_string_or(e, "id");
      DCT_CHECK_MSG(!s.id.empty(),
                    trace_path << ": every trace job needs an \"id\"");
      s.priority = parse_priority(json_string_or(e, "priority"));
      s.min_ranks = static_cast<int>(json_number_or(e, "min_ranks", 1));
      s.max_ranks = static_cast<int>(
          json_number_or(e, "max_ranks", s.min_ranks));
      s.iterations =
          static_cast<std::int64_t>(json_number_or(e, "iterations", 10));
      s.submit_time = json_number_or(e, "submit_s", 0.0);
      trace.push_back(std::move(s));
    }
  } else {
    trace = synthetic_trace(ranks, static_cast<int>(args.get_int("jobs", 100)),
                            seed, args.get_double("iters-scale", 1.0));
  }

  sched::ClusterConfig cfg;
  cfg.sched.ranks = ranks;
  cfg.sched.aging_interval = args.get_double("aging", 10.0);
  cfg.sched.starvation_age = args.get_double("starvation", 30.0);
  // Small per-job trainers: the point here is scheduling behaviour, not
  // model quality. Replication 2 keeps single-rank cedes DIMD-feasible.
  trainer::TrainerConfig& tpl = cfg.job_template;
  tpl.gpus_per_node = 1;
  tpl.batch_per_gpu = 2;
  tpl.dataset.images = 64;
  tpl.dataset.seed = seed;
  tpl.seed = seed;
  tpl.dimd.replication = 2;
  tpl.checkpoint_dir = args.get("checkpoint-dir", "cluster-ckpt");

  // Track the busiest instant of the run (ticks are serialized by the
  // scheduler lock) to report placement quality on the shared fabric.
  struct Peak {
    int used = -1;
    double at = 0.0;
    std::vector<std::string> names;
    std::vector<netsim::JobPlacement> placement;
  } peak;
  cfg.on_tick = [&peak, ranks](const sched::SchedCore& core, double now) {
    const int used = ranks - core.free_ranks();
    if (used <= peak.used) return;
    peak.used = used;
    peak.at = now;
    peak.names.clear();
    peak.placement.clear();
    for (const auto& v : core.jobs()) {
      if (v.state != sched::JobState::kRunning) continue;
      netsim::JobPlacement p;
      p.job = static_cast<int>(peak.names.size());
      p.hosts = v.ranks;
      peak.placement.push_back(std::move(p));
      peak.names.push_back(v.spec.id);
    }
  };

  std::printf("cluster: %d ranks, %zu job(s)%s, checkpoint dir %s\n",
              ranks, trace.size(),
              trace_path.empty() ? " (synthetic trace)" : "",
              tpl.checkpoint_dir.c_str());
  sched::ClusterManager mgr(cfg, std::move(trace));
  mgr.run();
  const auto& core = mgr.core();
  core.check_conservation();

  if (!event_log.empty()) {
    // JSONL audit trail: one scheduler transition per line.
    std::FILE* f = std::fopen(event_log.c_str(), "w");
    DCT_CHECK_MSG(f != nullptr, "cannot write " << event_log);
    const auto escaped = [](const std::string& s) {
      std::string out;
      for (const char c : s) {
        if (c == '"' || c == '\\') {
          out += '\\';
          out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          out += ' ';
        } else {
          out += c;
        }
      }
      return out;
    };
    for (const auto& ev : core.events()) {
      std::fprintf(f, "{\"t\":%.6f,\"event\":\"%s\",\"job\":\"%s\","
                      "\"ranks\":%d,\"detail\":\"%s\"}\n",
                   ev.time, sched::event_name(ev.kind),
                   escaped(ev.job).c_str(), ev.ranks,
                   escaped(ev.detail).c_str());
    }
    std::fclose(f);
    std::printf("wrote %zu scheduler events to %s\n", core.events().size(),
                event_log.c_str());
  }

  const auto s = core.summary();
  std::printf("\nmakespan %.2f s, mean wait %.2f s\n", s.makespan,
              s.mean_wait);
  std::printf("%d preemption(s), %d shrink(s), %d grow(s)\n", s.preemptions,
              s.shrinks, s.grows);
  for (const auto& [cls, n] : s.finished_by_class) {
    std::printf("  class %-10s %3d finished  %6.2f jobs/s\n", cls.c_str(), n,
                s.throughput_by_class.count(cls)
                    ? s.throughput_by_class.at(cls)
                    : 0.0);
  }

  if (peak.used > 0 && !peak.placement.empty()) {
    // Cross-job allreduce contention at the busiest instant, on the
    // same two-level fat-tree the timing models use (one rank ↔ one
    // host; pad to a full leaf).
    netsim::FatTree::Config tc;
    tc.hosts = ((ranks + 3) / 4) * 4;
    tc.hosts_per_leaf = 4;
    const netsim::FatTree tree(tc);
    const auto cont = netsim::estimate_contention(tree, peak.placement);
    std::printf("\npeak utilization %d/%d ranks at t=%.2fs; "
                "fabric contention per tenant:\n",
                peak.used, ranks, peak.at);
    for (const auto& c : cont) {
      const auto idx = static_cast<std::size_t>(c.job);
      std::printf("  %-14s %2zu rank(s)  slowdown %.2fx%s%s\n",
                  peak.names[idx].c_str(), peak.placement[idx].hosts.size(),
                  c.slowdown, c.busiest_link >= 0 ? "  busiest " : "",
                  c.busiest_name.c_str());
    }
  }

  const bool balanced = s.submitted == s.finished + s.cancelled;
  std::printf("\naccounting: %d submitted = %d finished + %d cancelled %s\n",
              s.submitted, s.finished, s.cancelled,
              balanced ? "[OK]" : "[MISMATCH]");
  if (s.cancelled > 0) {
    for (const auto& ev : core.events()) {
      if (ev.kind == sched::SchedEvent::Kind::kCancel) {
        std::printf("  cancelled: %s (%s)\n", ev.job.c_str(),
                    ev.detail.c_str());
      }
    }
  }
  return balanced ? 0 : 1;
}

/// `plan --topology KIND`: Fig. 5/6-style crossover tables — modeled
/// allreduce time for every zoo algorithm across payload sizes on the
/// chosen fabric, per-column winner starred, plus the offline tuner's
/// pick per payload (the argmin the online tuner converges to when its
/// measurements match the model).
int cmd_plan_topology(const ArgParser& args) {
  const std::string topo = args.get("topology", "fattree");
  const auto kinds = netsim::topology_kinds();
  if (std::find(kinds.begin(), kinds.end(), topo) == kinds.end()) {
    std::string known;
    for (const auto& k : kinds) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    std::fprintf(stderr, "unknown topology '%s' (known: %s)\n", topo.c_str(),
                 known.c_str());
    return 2;
  }
  netsim::ClusterConfig cluster;
  cluster.nodes = static_cast<int>(args.get_int("nodes", 16));
  cluster.topology = topo;
  cluster.oversubscription = args.get_double("oversub", 4.0);
  cluster.torus_cols = static_cast<int>(args.get_int("torus-cols", 0));

  const std::vector<std::string> algos = {
      "naive",        "recursive_halving", "halving_doubling",
      "hierarchical", "torus",             "ring",
      "multiring",    "bucket_ring",       "multicolor"};
  const std::vector<std::uint64_t> payloads = {
      std::uint64_t{256} << 10, std::uint64_t{1} << 20,
      std::uint64_t{4} << 20,   std::uint64_t{16} << 20,
      std::uint64_t{93} << 20};

  std::vector<std::vector<double>> t(
      algos.size(), std::vector<double>(payloads.size(), 0.0));
  std::vector<std::size_t> winner(payloads.size(), 0);
  for (std::size_t a = 0; a < algos.size(); ++a) {
    for (std::size_t p = 0; p < payloads.size(); ++p) {
      t[a][p] = netsim::allreduce_time_s(cluster, algos[a], payloads[p]);
      if (t[a][p] < t[winner[p]][p]) winner[p] = a;
    }
  }

  std::vector<std::string> headers{"algorithm"};
  for (const auto p : payloads) {
    headers.push_back(format_bytes(static_cast<double>(p)));
  }
  Table table(std::move(headers));
  for (std::size_t a = 0; a < algos.size(); ++a) {
    std::vector<std::string> row{algos[a]};
    for (std::size_t p = 0; p < payloads.size(); ++p) {
      row.push_back(Table::num(t[a][p] * 1e3, 3) +
                    (winner[p] == a ? " *" : ""));
    }
    table.add_row(std::move(row));
  }
  std::printf("modeled allreduce time (ms) on %s, %d nodes "
              "(* = fastest per payload)\n",
              topo.c_str(), cluster.nodes);
  table.print();

  Table picks({"payload", "offline tuner pick", "modeled"});
  for (std::size_t p = 0; p < payloads.size(); ++p) {
    picks.add_row({format_bytes(static_cast<double>(payloads[p])),
                   algos[winner[p]],
                   format_seconds(t[winner[p]][p])});
  }
  picks.print("crossover: best algorithm per payload class");
  return 0;
}

int cmd_plan(const ArgParser& args) {
  if (args.has("topology")) return cmd_plan_topology(args);
  trainer::EpochModelConfig cfg;
  cfg.model = args.get("model", "resnet50");
  cfg.nodes = static_cast<int>(args.get_int("nodes", 16));
  cfg.batch_per_gpu = args.get_int("batch", 64);
  cfg = args.has("baseline") ? trainer::with_open_source_baseline(cfg)
                             : trainer::with_all_optimizations(cfg);
  // Modeled gradient-comm pipeline (src/comm): --overlap hides bucket
  // reductions under backward; --compression-ratio scales wire bytes.
  cfg.comm_overlap = args.has("overlap");
  cfg.bucket_bytes = static_cast<std::uint64_t>(
      args.get_double("bucket-mb", 4.0) * 1024.0 * 1024.0);
  cfg.compression_ratio = args.get_double("compression-ratio", 1.0);
  const auto b = trainer::estimate_epoch(cfg);
  std::printf("%s on %d nodes (batch %lld/GPU, %s config):\n", cfg.model.c_str(),
              cfg.nodes, static_cast<long long>(cfg.batch_per_gpu),
              args.has("baseline") ? "open-source" : "optimized");
  std::printf("  epoch      %s (%0.f steps)\n", format_seconds(b.epoch_s).c_str(),
              b.steps);
  std::printf("  step       %s = max(compute %s + dpt %s, data %s) + "
              "allreduce %s\n",
              format_seconds(b.step_s).c_str(),
              format_seconds(b.compute_s).c_str(),
              format_seconds(b.dpt_overhead_s).c_str(),
              format_seconds(b.data_s).c_str(),
              format_seconds(b.exposed_allreduce_s).c_str());
  if (cfg.comm_overlap) {
    std::printf("  overlap    %.0f bucket(s): %s total allreduce, %s exposed\n",
                b.comm_buckets, format_seconds(b.allreduce_s).c_str(),
                format_seconds(b.exposed_allreduce_s).c_str());
  }
  std::printf("  90 epochs  %s\n", format_seconds(90.0 * b.epoch_s).c_str());
  return 0;
}

int cmd_allreduce(const ArgParser& args) {
  const std::string algo = args.get("algo", "multicolor");
  const int nodes = static_cast<int>(args.get_int("nodes", 16));
  const std::uint64_t payload =
      static_cast<std::uint64_t>(args.get_int("payload-mb", 93)) << 20;
  // Registry lookup first: an unknown name fails here with the full
  // list of known algorithms, before the schedule model sees it.
  auto algorithm = allreduce::make_algorithm(algo);
  netsim::ClusterConfig cluster;
  cluster.nodes = nodes;
  cluster.topology = args.get("topology", "fattree");
  cluster.oversubscription = args.get_double("oversub", 4.0);
  const double t = netsim::allreduce_time_s(cluster, algo, payload);
  std::printf("%s: %s of gradients across %d nodes (%s) → %s (%.2f GB/s)\n",
              algo.c_str(), format_bytes(static_cast<double>(payload)).c_str(),
              nodes, cluster.topology.c_str(), format_seconds(t).c_str(),
              static_cast<double>(payload) / t / 1e9);

  // Functional verification on min(nodes, 8) in-process ranks.
  const int ranks = std::min(nodes, 8);
  bool correct = true;
  simmpi::Runtime::execute(ranks, [&](simmpi::Communicator& comm) {
    std::vector<float> data(4096, static_cast<float>(comm.rank() + 1));
    algorithm->run(comm, std::span<float>(data));
    const float expect = ranks * (ranks + 1) / 2.0f;
    for (float v : data) {
      if (v != expect) correct = false;
    }
  });
  std::printf("functional check on %d ranks: %s\n", ranks,
              correct ? "OK" : "FAILED");
  return correct ? 0 : 1;
}

int cmd_shuffle(const ArgParser& args) {
  const int nodes = static_cast<int>(args.get_int("nodes", 32));
  const double dataset_gb = args.get_double("dataset-gb", 220.0);
  const int groups = static_cast<int>(args.get_int("groups", 1));
  netsim::ClusterConfig cluster;
  cluster.nodes = nodes;
  const auto per_node = static_cast<std::uint64_t>(
      dataset_gb * 1024.0 * 1024.0 * 1024.0 / nodes);
  const int group_size = nodes / std::max(1, groups);
  const double t = netsim::shuffle_time_s(cluster, per_node, group_size);
  std::printf("DIMD shuffle: %.0f GB over %d nodes (%d group(s) of %d) → "
              "%s; %s per node in memory\n",
              dataset_gb, nodes, groups, group_size,
              format_seconds(t).c_str(),
              format_bytes(static_cast<double>(per_node)).c_str());
  return 0;
}

int cmd_dataset(const ArgParser& args) {
  data::DatasetDef def;
  def.images = args.get_int("images", 512);
  def.classes = static_cast<std::int32_t>(args.get_int("classes", 10));
  const auto size = args.get_int("size", 16);
  def.image = data::ImageDef{3, size, size};
  def.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string blob = args.get("blob", "dctrain_blob.bin");
  const std::string index = args.get("index", "dctrain_index.bin");
  const auto bytes = data::build_synthetic_record_file(def, blob, index);
  std::printf("wrote %lld records (%d classes, %lldx%lld) → %s (%s) + %s\n",
              static_cast<long long>(def.images), def.classes,
              static_cast<long long>(size), static_cast<long long>(size),
              blob.c_str(), format_bytes(static_cast<double>(bytes)).c_str(),
              index.c_str());
  return 0;
}

int cmd_help() {
  std::printf(
      "dctrain %s — reproduction of Kumar et al., CLUSTER 2018\n\n"
      "subcommands:\n"
      "  train      run distributed SGD on simulated learners (real math);\n"
      "             --checkpoint-dir/--resume/--inject for fault tolerance\n"
      "  chaos      randomized fault schedule against the resilient driver;\n"
      "             --elastic shrinks past crashes on the surviving ranks,\n"
      "             --spares N heals back to full strength from hot spares,\n"
      "             --integrity adds bit-flip faults + CRC retransmit,\n"
      "             --quarantine evicts persistently flaky ranks\n"
      "  top        live per-rank phase table + straggler flags (telemetry)\n"
      "  cluster    multi-tenant gang scheduler: replay a job arrival\n"
      "             trace with priorities, preemption + checkpoint/resume,\n"
      "             and elastic capacity sharing on one simulated cluster\n"
      "  trace-report  per-rank phase breakdown of a captured trace;\n"
      "             --critical-path attributes step latency across ranks\n"
      "  plan       epoch-time decomposition for a cluster configuration\n"
      "  allreduce  price + verify a gradient allreduce algorithm\n"
      "  shuffle    price a DIMD dataset shuffle (Algorithm 2)\n"
      "  dataset    build a synthetic record blob + index file\n"
      "  help       this message\n\n"
      "see the header of tools/dctrain_cli.cpp for every option.\n",
      dct::kVersionString);
  std::string algos;
  for (const auto& a : allreduce::list_algorithms()) {
    if (!algos.empty()) algos += ", ";
    algos += a;
  }
  std::string topos;
  for (const auto& k : netsim::topology_kinds()) {
    if (!topos.empty()) topos += ", ";
    topos += k;
  }
  std::printf("\nallreduce algorithms (--allreduce / --algo):\n  %s\n"
              "fabric topologies (--topology):\n  %s\n",
              algos.c_str(), topos.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const std::string& cmd = args.command();
    int rc;
    if (cmd == "train") {
      rc = cmd_train(args);
    } else if (cmd == "chaos") {
      rc = cmd_chaos(args);
    } else if (cmd == "top") {
      rc = cmd_top(args);
    } else if (cmd == "cluster") {
      rc = cmd_cluster(args);
    } else if (cmd == "trace-report") {
      rc = cmd_trace_report(args);
    } else if (cmd == "plan") {
      rc = cmd_plan(args);
    } else if (cmd == "allreduce") {
      rc = cmd_allreduce(args);
    } else if (cmd == "shuffle") {
      rc = cmd_shuffle(args);
    } else if (cmd == "dataset") {
      rc = cmd_dataset(args);
    } else {
      rc = cmd_help();
      if (!cmd.empty() && cmd != "help") {
        std::fprintf(stderr, "\nunknown subcommand '%s'\n", cmd.c_str());
        rc = 2;
      }
    }
    for (const auto& key : args.unused()) {
      std::fprintf(stderr, "warning: unrecognised option --%s\n", key.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
