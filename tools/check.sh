#!/usr/bin/env bash
# Sanitizer gate for the concurrency-heavy subsystems: builds the tree
# under TSan and runs the `fault`, `simmpi`, `comm`, `elastic`, `obs`,
# `chaos`, `kernels`, `sched`, `integrity`, `allreduce`, and `autotune`
# ctest labels, repeats the `comm` + `kernels` + `integrity` +
# `allreduce` + `autotune` labels under ASan, and runs the `fault` +
# `elastic` + `kernels` + `integrity` + `allreduce` + `autotune` labels
# under UBSan. The collective zoo (allreduce label) and the online
# tuner (autotune label) ride all three legs: every algorithm is
# rank-threads exchanging buffers through the simmpi transport (TSan),
# walking partner-offset block arithmetic over shared spans (ASan), and
# doing bit-twiddled rank/mask index math (UBSan).
# The SDC-defense tests (integrity label) ride all three legs: the
# retransmit loop races the receiver deadline and the scoreboard
# gossip (TSan), the envelope (de)serialization walks raw byte spans
# (ASan), and the CRC slicing tables index with shifted unsigned
# arithmetic (UBSan). The telemetry plane (obs label) joins
# the TSan leg because its collector drains frames on a progress-engine
# worker thread while training threads push concurrently; the chaos
# soak (shrink → grow with hot spares under randomized faults) joins it
# because spare threads wait in the transport lobby while survivors run
# the grow handshake — exactly where a liveness/mailbox race would
# hide. The grow/spare elastic tests ride the existing `elastic` label
# through both the TSan and UBSan legs. The multi-tenant scheduler
# (sched label) joins the TSan leg because the ClusterManager's
# scheduler thread mutates the ledger, assignment slots, and command
# words under one mutex while every rank thread polls and confirms
# against them — the cede/limbo resurrection ordering in particular is
# a protocol whose races only TSan would catch.
# A final Release leg runs the micro-kernel bench and diffs it against
# the checked-in bench/BENCH_kernels.json baseline with tools/bench_gate
# (>20% regression on any metric fails the gate), then does the same
# for the scheduler policy bench against bench/BENCH_sched.json and
# the CRC-seal arms of the integrity bench against
# bench/BENCH_integrity.json — a missing baseline there skips cleanly
# until one is recorded with bench_gate --update-baseline. Set
# DCTRAIN_SKIP_BENCH_GATE=1 to skip that leg on noisy machines.
# The simmpi rank threads, the fault-injection hooks, the shrink
# agreement protocol, and the comm progress engine (background
# reductions racing backward) are exactly the code a data race would
# hide in; the threaded GEMM/conv chunking rides the same TSan leg. The
# comm codecs' byte-level encode/decode and the kernels' restrict
# pointer arithmetic / ScratchPool recycling are where an out-of-bounds
# write would hide, hence the address leg; the checkpoint/shrink
# (de)serialization, rank arithmetic, and fp16/int8 bit twiddling are
# where signed overflow or misaligned loads would hide, hence the
# undefined leg.
#
# Usage: tools/check.sh [tsan-build-dir] [asan-build-dir] [ubsan-build-dir]
#        (defaults: build-tsan build-asan build-ubsan)
# DCTRAIN_SANITIZE overrides the first leg's sanitizer.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${DCTRAIN_SANITIZE:-thread}"
BUILD_DIR="${1:-build-tsan}"
ASAN_BUILD_DIR="${2:-build-asan}"
UBSAN_BUILD_DIR="${3:-build-ubsan}"

echo "== configuring ${BUILD_DIR} with DCTRAIN_SANITIZE=${SANITIZER}"
cmake -B "${BUILD_DIR}" -S . -DDCTRAIN_SANITIZE="${SANITIZER}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building sanitized test binaries"
cmake --build "${BUILD_DIR}" -j --target \
  fault_test simmpi_test simmpi_stress_test comm_test elastic_test \
  chaos_soak_test kernels_test telemetry_test sched_test integrity_test \
  allreduce_test allreduce_zoo_test autotune_test

echo "== running ctest -L 'fault|simmpi|comm|elastic|obs|chaos|kernels|sched|integrity|allreduce|autotune' under ${SANITIZER} sanitizer"
ctest --test-dir "${BUILD_DIR}" -L "fault|simmpi|comm|elastic|obs|chaos|kernels|sched|integrity|allreduce|autotune" \
  --output-on-failure -j 4

echo "== configuring ${ASAN_BUILD_DIR} with DCTRAIN_SANITIZE=address"
cmake -B "${ASAN_BUILD_DIR}" -S . -DDCTRAIN_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building address-sanitized comm + kernels + integrity + allreduce tests"
cmake --build "${ASAN_BUILD_DIR}" -j --target comm_test kernels_test \
  integrity_test allreduce_test allreduce_zoo_test autotune_test

echo "== running ctest -L 'comm|kernels|integrity|allreduce|autotune' under address sanitizer"
ctest --test-dir "${ASAN_BUILD_DIR}" -L "comm|kernels|integrity|allreduce|autotune" \
  --output-on-failure -j 4

echo "== configuring ${UBSAN_BUILD_DIR} with DCTRAIN_SANITIZE=undefined"
cmake -B "${UBSAN_BUILD_DIR}" -S . -DDCTRAIN_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building undefined-sanitized recovery + kernels + integrity + allreduce tests"
cmake --build "${UBSAN_BUILD_DIR}" -j --target \
  fault_test elastic_test kernels_test integrity_test \
  allreduce_test allreduce_zoo_test autotune_test

echo "== running ctest -L 'fault|elastic|kernels|integrity|allreduce|autotune' under undefined sanitizer"
ctest --test-dir "${UBSAN_BUILD_DIR}" -L "fault|elastic|kernels|integrity|allreduce|autotune" \
  --output-on-failure -j 4

if [[ "${DCTRAIN_SKIP_BENCH_GATE:-0}" != "1" ]]; then
  BENCH_BUILD_DIR="${4:-build-bench}"
  echo "== configuring ${BENCH_BUILD_DIR} (Release) for the bench gate"
  cmake -B "${BENCH_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release

  echo "== building bench_micro_kernels + bench_sched + bench_integrity + bench_allreduce_zoo + bench_gate"
  cmake --build "${BENCH_BUILD_DIR}" -j --target \
    bench_micro_kernels bench_sched bench_integrity bench_allreduce_zoo \
    bench_gate

  echo "== running micro-kernel bench and diffing against bench/BENCH_kernels.json"
  # 5 repetitions: the gate merges them best-of (min time / max
  # throughput), which cancels the one-sided scheduler/steal noise a
  # single sample would trip the 15% tolerance on. 5 (not 3) because
  # the memory-bandwidth-bound arms need more draws to catch a
  # contention-free window on a shared box.
  "${BENCH_BUILD_DIR}/bench/bench_micro_kernels" \
    --benchmark_repetitions=5 \
    --benchmark_out="${BENCH_BUILD_DIR}/bench_fresh.json" \
    --benchmark_out_format=json
  # The thread-spawning orchestration benches (in-process allreduce
  # ranks, the comm overlap engine, DIMD shuffle workers, the
  # thread-pool gemm/conv arms) swing ±25% with the scheduler even as
  # best-of-5 — ungateable on a small box; the single-threaded kernel
  # arms are the vectorization coverage and gate stably. Tolerance is
  # 20% rather than the gate's 15% default because the fastest
  # memory-bandwidth-bound arms still vary up to ~18% with co-tenant
  # memory traffic; the failures this gate exists to catch (a kernel
  # silently devectorized, a pooled buffer re-allocated per call) are
  # 2x-8x, not 20%.
  "${BENCH_BUILD_DIR}/tools/bench_gate" \
    --baseline bench/BENCH_kernels.json \
    --fresh "${BENCH_BUILD_DIR}/bench_fresh.json" \
    --tolerance 0.20 \
    --skip 'BM_AllreduceInProcess|BM_CommOverlap|BM_DimdShuffle|BM_GemmThreaded|BM_ConvForwardThreaded'

  echo "== running scheduler bench and diffing against bench/BENCH_sched.json"
  # The scheduler bench is pure single-threaded policy code in virtual
  # time, so 3 repetitions suffice. Until a baseline is recorded
  # (bench_gate --update-baseline --baseline bench/BENCH_sched.json
  # --fresh <run.json>) the gate prints a pointer and passes — a new
  # suite never breaks CI the commit that adds it.
  "${BENCH_BUILD_DIR}/bench/bench_sched" \
    --benchmark_repetitions=3 \
    --benchmark_out="${BENCH_BUILD_DIR}/bench_sched_fresh.json" \
    --benchmark_out_format=json
  "${BENCH_BUILD_DIR}/tools/bench_gate" \
    --baseline bench/BENCH_sched.json \
    --fresh "${BENCH_BUILD_DIR}/bench_sched_fresh.json" \
    --tolerance 0.20

  echo "== running integrity bench and diffing against bench/BENCH_integrity.json"
  # Only the single-threaded CRC seal arms gate (a devectorized or
  # de-sliced CRC is a 5x-6x regression, far past 20%); the
  # world-spawning sealed-vs-plain and trainer-step arms swing with the
  # thread scheduler like the other in-process arms and are evidence
  # for the <2% step-overhead claim, not gate material.
  "${BENCH_BUILD_DIR}/bench/bench_integrity" \
    --benchmark_repetitions=5 \
    --benchmark_out="${BENCH_BUILD_DIR}/bench_integrity_fresh.json" \
    --benchmark_out_format=json
  "${BENCH_BUILD_DIR}/tools/bench_gate" \
    --baseline bench/BENCH_integrity.json \
    --fresh "${BENCH_BUILD_DIR}/bench_integrity_fresh.json" \
    --tolerance 0.20 \
    --skip 'BM_EnvelopeSendRecv|BM_TrainerStepIntegrity'

  echo "== running collective-zoo bench and diffing against bench/BENCH_allreduce.json"
  # The schedule-builder and modeled-time arms are single-threaded
  # deterministic model code and gate stably at 3 repetitions; the
  # 8-rank in-process execution arms swing with the thread scheduler
  # like every other world-spawning arm and are excluded.
  "${BENCH_BUILD_DIR}/bench/bench_allreduce_zoo" \
    --benchmark_repetitions=3 \
    --benchmark_out="${BENCH_BUILD_DIR}/bench_allreduce_fresh.json" \
    --benchmark_out_format=json
  "${BENCH_BUILD_DIR}/tools/bench_gate" \
    --baseline bench/BENCH_allreduce.json \
    --fresh "${BENCH_BUILD_DIR}/bench_allreduce_fresh.json" \
    --tolerance 0.20 \
    --skip 'BM_ZooAllreduceInProcess'
fi

echo "== sanitizer checks passed (${SANITIZER} + address + undefined)"
