#!/usr/bin/env bash
# Sanitizer gate for the concurrency-heavy subsystems: builds the tree
# under TSan and runs the `fault`, `simmpi`, `comm`, and `elastic` ctest
# labels, repeats the `comm` label under ASan, and runs the `fault` +
# `elastic` labels under UBSan. The simmpi rank threads, the
# fault-injection hooks, the shrink agreement protocol, and the comm
# progress engine (background reductions racing backward) are exactly
# the code a data race would hide in; the comm codecs' byte-level
# encode/decode is where an out-of-bounds write would hide, hence the
# address leg; the checkpoint/shrink (de)serialization and rank
# arithmetic is where signed overflow or misaligned loads would hide,
# hence the undefined leg.
#
# Usage: tools/check.sh [tsan-build-dir] [asan-build-dir] [ubsan-build-dir]
#        (defaults: build-tsan build-asan build-ubsan)
# DCTRAIN_SANITIZE overrides the first leg's sanitizer.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${DCTRAIN_SANITIZE:-thread}"
BUILD_DIR="${1:-build-tsan}"
ASAN_BUILD_DIR="${2:-build-asan}"
UBSAN_BUILD_DIR="${3:-build-ubsan}"

echo "== configuring ${BUILD_DIR} with DCTRAIN_SANITIZE=${SANITIZER}"
cmake -B "${BUILD_DIR}" -S . -DDCTRAIN_SANITIZE="${SANITIZER}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building sanitized test binaries"
cmake --build "${BUILD_DIR}" -j --target \
  fault_test simmpi_test simmpi_stress_test comm_test elastic_test

echo "== running ctest -L 'fault|simmpi|comm|elastic' under ${SANITIZER} sanitizer"
ctest --test-dir "${BUILD_DIR}" -L "fault|simmpi|comm|elastic" \
  --output-on-failure -j 4

echo "== configuring ${ASAN_BUILD_DIR} with DCTRAIN_SANITIZE=address"
cmake -B "${ASAN_BUILD_DIR}" -S . -DDCTRAIN_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building address-sanitized comm tests"
cmake --build "${ASAN_BUILD_DIR}" -j --target comm_test

echo "== running ctest -L comm under address sanitizer"
ctest --test-dir "${ASAN_BUILD_DIR}" -L comm --output-on-failure -j 4

echo "== configuring ${UBSAN_BUILD_DIR} with DCTRAIN_SANITIZE=undefined"
cmake -B "${UBSAN_BUILD_DIR}" -S . -DDCTRAIN_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building undefined-sanitized recovery tests"
cmake --build "${UBSAN_BUILD_DIR}" -j --target fault_test elastic_test

echo "== running ctest -L 'fault|elastic' under undefined sanitizer"
ctest --test-dir "${UBSAN_BUILD_DIR}" -L "fault|elastic" \
  --output-on-failure -j 4

echo "== sanitizer checks passed (${SANITIZER} + address + undefined)"
