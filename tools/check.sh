#!/usr/bin/env bash
# Sanitizer gate for the concurrency-heavy subsystems: builds the tree
# under TSan and runs the `fault`, `simmpi`, and `comm` ctest labels,
# then repeats the `comm` label under ASan. The simmpi rank threads,
# the fault-injection hooks, and the comm progress engine (background
# reductions racing backward) are exactly the code a data race would
# hide in; the comm codecs' byte-level encode/decode is where an
# out-of-bounds write would hide, hence the address leg.
#
# Usage: tools/check.sh [tsan-build-dir] [asan-build-dir]
#        (defaults: build-tsan build-asan)
# DCTRAIN_SANITIZE overrides the first leg's sanitizer.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${DCTRAIN_SANITIZE:-thread}"
BUILD_DIR="${1:-build-tsan}"
ASAN_BUILD_DIR="${2:-build-asan}"

echo "== configuring ${BUILD_DIR} with DCTRAIN_SANITIZE=${SANITIZER}"
cmake -B "${BUILD_DIR}" -S . -DDCTRAIN_SANITIZE="${SANITIZER}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building sanitized test binaries"
cmake --build "${BUILD_DIR}" -j --target \
  fault_test simmpi_test simmpi_stress_test comm_test

echo "== running ctest -L 'fault|simmpi|comm' under ${SANITIZER} sanitizer"
ctest --test-dir "${BUILD_DIR}" -L "fault|simmpi|comm" \
  --output-on-failure -j 4

echo "== configuring ${ASAN_BUILD_DIR} with DCTRAIN_SANITIZE=address"
cmake -B "${ASAN_BUILD_DIR}" -S . -DDCTRAIN_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building address-sanitized comm tests"
cmake --build "${ASAN_BUILD_DIR}" -j --target comm_test

echo "== running ctest -L comm under address sanitizer"
ctest --test-dir "${ASAN_BUILD_DIR}" -L comm --output-on-failure -j 4

echo "== sanitizer checks passed (${SANITIZER} + address)"
