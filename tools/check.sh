#!/usr/bin/env bash
# Sanitizer gate for the concurrency-heavy subsystems: builds the tree
# with -DDCTRAIN_SANITIZE=thread (override: DCTRAIN_SANITIZE=address)
# and runs the `fault` and `simmpi` ctest labels under it. The simmpi
# rank threads plus the fault-injection hooks are exactly the code a
# data race would hide in, so this is the check to run after touching
# src/simmpi or the recovery path.
#
# Usage: tools/check.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${DCTRAIN_SANITIZE:-thread}"
BUILD_DIR="${1:-build-tsan}"

echo "== configuring ${BUILD_DIR} with DCTRAIN_SANITIZE=${SANITIZER}"
cmake -B "${BUILD_DIR}" -S . -DDCTRAIN_SANITIZE="${SANITIZER}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building sanitized test binaries"
cmake --build "${BUILD_DIR}" -j --target \
  fault_test simmpi_test simmpi_stress_test

echo "== running ctest -L 'fault|simmpi' under ${SANITIZER} sanitizer"
ctest --test-dir "${BUILD_DIR}" -L "fault|simmpi" --output-on-failure -j 4

echo "== sanitizer check passed (${SANITIZER})"
