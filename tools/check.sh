#!/usr/bin/env bash
# Sanitizer gate for the concurrency-heavy subsystems: builds the tree
# under TSan and runs the `fault`, `simmpi`, `comm`, `elastic`, and
# `kernels` ctest labels, repeats the `comm` + `kernels` labels under
# ASan, and runs the `fault` + `elastic` + `kernels` labels under UBSan.
# The simmpi rank threads, the fault-injection hooks, the shrink
# agreement protocol, and the comm progress engine (background
# reductions racing backward) are exactly the code a data race would
# hide in; the threaded GEMM/conv chunking rides the same TSan leg. The
# comm codecs' byte-level encode/decode and the kernels' restrict
# pointer arithmetic / ScratchPool recycling are where an out-of-bounds
# write would hide, hence the address leg; the checkpoint/shrink
# (de)serialization, rank arithmetic, and fp16/int8 bit twiddling are
# where signed overflow or misaligned loads would hide, hence the
# undefined leg.
#
# Usage: tools/check.sh [tsan-build-dir] [asan-build-dir] [ubsan-build-dir]
#        (defaults: build-tsan build-asan build-ubsan)
# DCTRAIN_SANITIZE overrides the first leg's sanitizer.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${DCTRAIN_SANITIZE:-thread}"
BUILD_DIR="${1:-build-tsan}"
ASAN_BUILD_DIR="${2:-build-asan}"
UBSAN_BUILD_DIR="${3:-build-ubsan}"

echo "== configuring ${BUILD_DIR} with DCTRAIN_SANITIZE=${SANITIZER}"
cmake -B "${BUILD_DIR}" -S . -DDCTRAIN_SANITIZE="${SANITIZER}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building sanitized test binaries"
cmake --build "${BUILD_DIR}" -j --target \
  fault_test simmpi_test simmpi_stress_test comm_test elastic_test kernels_test

echo "== running ctest -L 'fault|simmpi|comm|elastic|kernels' under ${SANITIZER} sanitizer"
ctest --test-dir "${BUILD_DIR}" -L "fault|simmpi|comm|elastic|kernels" \
  --output-on-failure -j 4

echo "== configuring ${ASAN_BUILD_DIR} with DCTRAIN_SANITIZE=address"
cmake -B "${ASAN_BUILD_DIR}" -S . -DDCTRAIN_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building address-sanitized comm + kernels tests"
cmake --build "${ASAN_BUILD_DIR}" -j --target comm_test kernels_test

echo "== running ctest -L 'comm|kernels' under address sanitizer"
ctest --test-dir "${ASAN_BUILD_DIR}" -L "comm|kernels" --output-on-failure -j 4

echo "== configuring ${UBSAN_BUILD_DIR} with DCTRAIN_SANITIZE=undefined"
cmake -B "${UBSAN_BUILD_DIR}" -S . -DDCTRAIN_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo

echo "== building undefined-sanitized recovery + kernels tests"
cmake --build "${UBSAN_BUILD_DIR}" -j --target fault_test elastic_test kernels_test

echo "== running ctest -L 'fault|elastic|kernels' under undefined sanitizer"
ctest --test-dir "${UBSAN_BUILD_DIR}" -L "fault|elastic|kernels" \
  --output-on-failure -j 4

echo "== sanitizer checks passed (${SANITIZER} + address + undefined)"
