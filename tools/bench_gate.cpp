// bench_gate — perf-regression gate over checked-in bench baselines.
//
//   bench_gate --baseline bench/BENCH_kernels.json --fresh fresh.json
//              [--tolerance 0.15] [--min-metric-ns 100] [--skip REGEX]
//              [--update-baseline]
//
// Both files are google-benchmark `--benchmark_out` JSON (the format of
// the bench/BENCH_*.json baselines). For every benchmark name present
// in BOTH files, the gate compares:
//   • the primary time metric (cpu_time preferred, real_time fallback)
//     — lower is better;
//   • bytes_per_second / items_per_second when both sides report them
//     — higher is better.
// A metric that moved in the bad direction by more than --tolerance
// (fractional, default 0.15 = 15%) is a regression; any regression
// makes the exit code 1 (tools/check.sh fails). Benchmarks present on
// only one side are reported but never fail the gate, so adding or
// retiring a bench doesn't break CI the same commit.
//
// Noise control, because a 15% gate on single runs is a coin flip on
// a shared box:
//   • Repeated samples of one benchmark (`--benchmark_repetitions`)
//     are merged *best-of*: min for time metrics, max for throughput.
//     Interference (scheduler steal, frequency dips) only ever makes
//     code slower, so the best repetition is the stable estimate of
//     what the code can do — medians still swung ±20% between
//     identical runs here. check.sh runs both sides with
//     repetitions=5. Aggregate rows (mean/median/stddev) are used
//     only as a fallback for files that carry nothing else
//     (--benchmark_report_aggregates_only), median rows keyed by
//     run_name.
//   • --min-metric-ns (default 100 ns): a benchmark whose time metric
//     sits under the floor on either side is skipped *entirely*,
//     throughput metrics included — a 40 ns kernel that jitters to
//     60 ns is scheduler noise, not a regression.
//   • --skip REGEX excludes benchmarks by name (std::regex search).
//     check.sh uses it for the thread-spawning orchestration benches,
//     whose medians still swing ±25% with the scheduler on a small
//     box; the single-threaded kernel arms gate fine.
//
// --update-baseline accepts the fresh run as the new baseline: the
// comparison still prints (informational, when a baseline exists), then
// the fresh file is copied over the baseline path and the exit code is
// 0 regardless of deltas. Use after an intentional perf change instead
// of hand-editing the checked-in JSON.
//
// A missing baseline file is not an error: without --update-baseline
// the gate prints a pointer at --update-baseline and exits 0, so a
// newly added bench suite rides CI unchecked until someone records its
// first baseline; with it, the fresh run becomes that baseline.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "util/args.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using dct::JsonValue;

struct Metric {
  double value = 0.0;
  bool lower_better = true;
};

/// name → metric-name → value, from a google-benchmark JSON document.
using BenchMap = std::map<std::string, std::map<std::string, Metric>>;

BenchMap load_bench(const std::string& path) {
  const JsonValue doc = dct::load_json(path);
  const JsonValue* benches = doc.find("benchmarks");
  if (benches == nullptr || benches->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "%s: no \"benchmarks\" array (is this a "
                         "google-benchmark --benchmark_out file?)\n",
                 path.c_str());
    std::exit(2);
  }
  BenchMap plain;
  BenchMap medians;
  // Best-of merge: repeated samples keep the most favorable value —
  // noise is one-sided, it only ever slows a benchmark down.
  const auto merge = [](std::map<std::string, Metric>& metrics,
                        const char* key, double v, bool lower_better) {
    if (v <= 0.0) return;
    const auto it = metrics.find(key);
    if (it == metrics.end()) {
      metrics[key] = Metric{v, lower_better};
      return;
    }
    if (lower_better ? v < it->second.value : v > it->second.value) {
      it->second.value = v;
    }
  };
  for (const JsonValue& b : benches->array) {
    const bool aggregate = dct::json_string_or(b, "run_type") == "aggregate";
    std::string name;
    if (aggregate) {
      // Median is the only aggregate row that is itself a performance
      // number. Keyed by run_name so it lines up with iteration rows
      // on the other side.
      if (dct::json_string_or(b, "aggregate_name") != "median") continue;
      name = dct::json_string_or(b, "run_name");
    } else {
      name = dct::json_string_or(b, "name");
    }
    if (name.empty()) continue;
    auto& metrics = (aggregate ? medians : plain)[name];
    const double cpu = dct::json_number_or(b, "cpu_time", -1.0);
    const double real = dct::json_number_or(b, "real_time", -1.0);
    if (cpu > 0.0) {
      merge(metrics, "cpu_time", cpu, /*lower_better=*/true);
    } else if (real > 0.0) {
      merge(metrics, "real_time", real, /*lower_better=*/true);
    }
    for (const char* tp : {"bytes_per_second", "items_per_second"}) {
      merge(metrics, tp, dct::json_number_or(b, tp, -1.0),
            /*lower_better=*/false);
    }
  }
  // Iteration samples win; medians only fill benchmarks that have none
  // (a file written with --benchmark_report_aggregates_only).
  for (auto& [name, metrics] : medians) {
    plain.emplace(name, std::move(metrics));
  }
  return plain;
}

/// A benchmark's time metric, or -1 when it reports none.
double time_metric(const std::map<std::string, Metric>& metrics) {
  for (const char* t : {"cpu_time", "real_time"}) {
    const auto it = metrics.find(t);
    if (it != metrics.end()) return it->second.value;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const dct::ArgParser args(argc, argv);
    const std::string baseline_path = args.get("baseline", "");
    const std::string fresh_path = args.get("fresh", "");
    const bool update_baseline = args.has("update-baseline");
    if (baseline_path.empty() || fresh_path.empty()) {
      std::fprintf(stderr,
                   "usage: bench_gate --baseline BENCH.json --fresh RUN.json "
                   "[--tolerance 0.15] [--min-metric-ns 100] "
                   "[--update-baseline]\n");
      return 2;
    }
    if (!std::filesystem::exists(baseline_path)) {
      if (update_baseline) {
        // First baseline for a new bench suite: nothing to compare
        // against.
        std::filesystem::copy_file(
            fresh_path, baseline_path,
            std::filesystem::copy_options::overwrite_existing);
        std::printf("bench_gate: created baseline %s from %s\n",
                    baseline_path.c_str(), fresh_path.c_str());
        return 0;
      }
      // A bench suite without a recorded baseline cannot gate yet, and
      // failing here would make adding a new suite break CI the same
      // commit. Skip cleanly and point at the way to record one.
      std::printf("bench_gate: no baseline at %s — skipping comparison "
                  "(record one with --update-baseline)\n",
                  baseline_path.c_str());
      return 0;
    }
    const double tolerance = args.get_double("tolerance", 0.15);
    const double min_ns = args.get_double("min-metric-ns", 100.0);
    const std::string skip_pattern = args.get("skip", "");
    std::optional<std::regex> skip;
    if (!skip_pattern.empty()) skip.emplace(skip_pattern);
    const auto skipped = [&](const std::string& name) {
      return skip.has_value() && std::regex_search(name, *skip);
    };

    const BenchMap baseline = load_bench(baseline_path);
    const BenchMap fresh = load_bench(fresh_path);

    dct::Table table({"benchmark", "metric", "baseline", "fresh", "delta",
                      "verdict"});
    int regressions = 0;
    int compared = 0;
    for (const auto& [name, base_metrics] : baseline) {
      if (skipped(name)) {
        table.add_row({name, "-", "-", "-", "-", "skipped (--skip)"});
        continue;
      }
      const auto fit = fresh.find(name);
      if (fit == fresh.end()) {
        table.add_row({name, "-", "-", "-", "-", "missing in fresh"});
        continue;
      }
      // A benchmark timed under the floor on either side is all noise —
      // skip every metric it reports, throughput included.
      const double base_t = time_metric(base_metrics);
      const double fresh_t = time_metric(fit->second);
      if ((base_t >= 0.0 && base_t < min_ns) ||
          (fresh_t >= 0.0 && fresh_t < min_ns)) {
        table.add_row({name, "-", "-", "-", "-", "below min-metric-ns"});
        continue;
      }
      for (const auto& [metric, base] : base_metrics) {
        const auto mit = fit->second.find(metric);
        if (mit == fit->second.end()) continue;
        const Metric& now = mit->second;
        ++compared;
        // Positive delta = got worse, whatever the metric direction.
        const double delta = base.lower_better
                                 ? now.value / base.value - 1.0
                                 : base.value / now.value - 1.0;
        const bool regressed = delta > tolerance;
        const bool improved = delta < -tolerance;
        if (regressed) ++regressions;
        char delta_str[32];
        std::snprintf(delta_str, sizeof(delta_str), "%+.1f%%", 100.0 * delta);
        table.add_row({name, metric, dct::Table::num(base.value, 1),
                       dct::Table::num(now.value, 1), delta_str,
                       regressed   ? "REGRESSION"
                       : improved  ? "improved"
                                   : "ok"});
      }
    }
    for (const auto& [name, metrics] : fresh) {
      (void)metrics;
      if (baseline.find(name) == baseline.end() && !skipped(name)) {
        table.add_row({name, "-", "-", "-", "-", "new (no baseline)"});
      }
    }
    table.print("bench gate: " + fresh_path + " vs " + baseline_path);
    std::printf("%d metric(s) compared, tolerance %.0f%%: %d regression(s)\n",
                compared, 100.0 * tolerance, regressions);
    if (update_baseline) {
      std::filesystem::copy_file(
          fresh_path, baseline_path,
          std::filesystem::copy_options::overwrite_existing);
      std::printf("bench_gate: baseline %s updated from %s\n",
                  baseline_path.c_str(), fresh_path.c_str());
      return 0;
    }
    if (compared == 0) {
      std::fprintf(stderr, "bench_gate: nothing to compare — baseline and "
                           "fresh share no benchmark names\n");
      return 2;
    }
    return regressions > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }
}
